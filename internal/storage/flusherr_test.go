package storage

import (
	"errors"
	"strings"
	"testing"
)

// dirtyPages pins, marks and unpins n freshly allocated pages so they
// sit dirty in the pool, and returns their ids.
func dirtyPages(t *testing.T, pool *BufferPool, n int) []PageID {
	t.Helper()
	ids := make([]PageID, 0, n)
	for i := 0; i < n; i++ {
		fr, err := pool.GetNew()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	return ids
}

// TestFlushAllJoinsEveryWriteBackError proves a sick device does not
// hide failures behind the first one: every failed write-back is
// joined into the returned error and counted, and the frames stay
// dirty for a later retry.
func TestFlushAllJoinsEveryWriteBackError(t *testing.T) {
	inj := NewFaultInjector(NewDisk(64), 1)
	pool := NewBufferPool(inj, 0, LRU)
	ids := dirtyPages(t, pool, 3)
	for _, id := range ids {
		inj.Schedule(Fault{Op: OpWrite, Page: id, Permanent: true})
	}
	err := pool.FlushAll()
	if err == nil {
		t.Fatal("FlushAll on a sick device returned nil")
	}
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("error lost its cause: %v", err)
	}
	for _, id := range ids {
		if !strings.Contains(err.Error(), id.String()) {
			t.Fatalf("failure for page %v not surfaced in %q", id, err)
		}
	}
	if got := pool.Stats().WriteBackErrors; got != 3 {
		t.Fatalf("WriteBackErrors = %d, want 3", got)
	}
	// Heal and retry: the frames stayed dirty, so the data is not lost.
	inj.Heal()
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll after heal: %v", err)
	}
	buf := make([]byte, 64)
	if err := pool.DropClean(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if err := inj.Read(id, buf); err != nil || buf[0] != byte(i+1) {
			t.Fatalf("page %v lost after heal+flush: %v, byte %#x", id, err, buf[0])
		}
	}
}

// TestDropCleanSurfacesShardErrors covers the same property for
// DropClean: a pinned page and a write-back failure are both reported
// as errors (not silently counted), and a failing shard keeps its
// frames so nothing is lost.
func TestDropCleanSurfacesShardErrors(t *testing.T) {
	inj := NewFaultInjector(NewDisk(64), 1)
	pool := NewBufferPool(inj, 0, LRU)
	ids := dirtyPages(t, pool, 2)

	pinned, err := pool.Get(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	err = pool.DropClean()
	pinned.Unpin()
	if err == nil || !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("DropClean with a pinned page = %v, want pinned-page error", err)
	}

	// The refused shard kept its frames: re-dirty a page, make its
	// write-back fail, and the failure must surface with its cause.
	fr, err := pool.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 0x55
	fr.MarkDirty()
	fr.Unpin()
	inj.Schedule(Fault{Op: OpWrite, Page: ids[0], Permanent: true})
	if err := pool.DropClean(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("DropClean on a sick device = %v, want ErrInjectedFault", err)
	}
	// Heal: the dirty frame survived both failed drops.
	inj.Heal()
	if err := pool.DropClean(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := inj.Read(ids[0], buf); err != nil || buf[0] != 0x55 {
		t.Fatalf("page %v lost: %v, byte %#x", ids[0], err, buf[0])
	}
}

// TestDropCleanRefusedDuringWALTransaction: dropping frames an active
// WAL transaction still holds would lose uncommitted data.
func TestDropCleanRefusedDuringWALTransaction(t *testing.T) {
	dir := t.TempDir()
	fd, err := OpenFileDisk(dir+"/pages", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	w, err := OpenWAL(dir + "/pages.wal")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	pool := NewBufferPool(fd, 0, LRU)
	pool.AttachWAL(w)
	txn, err := pool.BeginUndo()
	if err != nil {
		t.Fatal(err)
	}
	dirtyPages(t, pool, 1)
	if err := pool.DropClean(); err == nil {
		t.Fatal("DropClean during an active WAL transaction succeeded")
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := pool.DropClean(); err != nil {
		t.Fatalf("DropClean after commit: %v", err)
	}
}
