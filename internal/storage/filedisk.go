package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// ErrCorruptPage is wrapped by every checksum failure a FileDisk
// detects, so callers can tell media corruption (torn writes, bit rot)
// from other I/O errors with errors.Is and route the page to the
// quarantine/Repair machinery.
var ErrCorruptPage = errors.New("corrupt page (checksum mismatch)")

// castagnoli is the CRC32C polynomial table; CRC32C is the standard
// storage checksum (iSCSI, ext4, Btrfs) and has hardware support.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// On-disk layout of a FileDisk:
//
//	offset 0:    superblock slot A ─┐ dual slots, generation-versioned,
//	offset 512:  superblock slot B ─┘ so a torn superblock write is survivable
//	offset 4096: page 1, page 2, ... each pageHeaderSize+pageSize bytes
//
// Per-page header (pageHeaderSize bytes, little-endian):
//
//	crc   u32  CRC32C over the remaining header bytes + payload
//	flags u32  reserved, zero
//	lsn   u64  LSN of the last WAL-covered write (0 = never WAL-covered)
//	id    u64  page id, so a misdirected write is caught as corruption
const (
	pageHeaderSize  = 24
	fileHeaderBytes = 4096 // superblock region before page 1
	sbSlotSize      = 64
	sbSlotB         = 512
	sbMagic         = 0x41535246_44534b31 // "ASRFDSK1"
)

// FileDisk implements Device over a real page file. Every page carries
// a checksummed header so torn or corrupt pages are detected on read
// (returned as ErrCorruptPage), and an LSN used by Recover to decide
// whether a logged page image is newer than the stored page.
//
// The free list is kept in memory only: pages freed and not reused
// before the process exits are leaked in the file (their ids are never
// handed out again because nextID is persisted). This trades a little
// file growth for not having to log allocator state.
//
// A FileDisk is safe for concurrent use.
type FileDisk struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	pageSize int
	nextID   PageID
	free     []PageID
	fresh    map[PageID]bool // allocated this run, never written: reads are zeros
	maxLSN   uint64
	gen      uint64 // superblock generation, alternates slots
	stats    DiskStats
	cp       *Crashpoint
}

// physSize returns the on-file size of one page record.
func (d *FileDisk) physSize() int64 { return int64(pageHeaderSize + d.pageSize) }

// pageOffset returns the file offset of a page id.
func (d *FileDisk) pageOffset(id PageID) int64 {
	return fileHeaderBytes + int64(id-1)*d.physSize()
}

// OpenFileDisk opens (or creates) a page file. pageSize is used only
// when creating a fresh file (DefaultPageSize when ≤ 0); an existing
// file's page size is authoritative and a conflicting non-zero pageSize
// is an error.
func OpenFileDisk(path string, pageSize int) (*FileDisk, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	d := &FileDisk{f: f, path: path, pageSize: pageSize, nextID: 1, fresh: map[PageID]bool{}}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if err := d.writeSuperblock(); err != nil {
			f.Close()
			return nil, err
		}
		return d, nil
	}
	if err := d.readSuperblock(pageSize); err != nil {
		f.Close()
		return nil, err
	}
	// A crash can lose a superblock update; never hand out an id that
	// the file already has bytes for.
	if filePages := (st.Size() - fileHeaderBytes + d.physSize() - 1) / d.physSize(); filePages >= int64(d.nextID) {
		d.nextID = PageID(filePages) + 1
	}
	return d, nil
}

// encodeSuperblock renders one slot.
func (d *FileDisk) encodeSuperblock() []byte {
	b := make([]byte, sbSlotSize)
	binary.LittleEndian.PutUint64(b[0:], sbMagic)
	binary.LittleEndian.PutUint64(b[8:], d.gen)
	binary.LittleEndian.PutUint64(b[16:], uint64(d.pageSize))
	binary.LittleEndian.PutUint64(b[24:], uint64(d.nextID))
	binary.LittleEndian.PutUint64(b[32:], d.maxLSN)
	binary.LittleEndian.PutUint32(b[sbSlotSize-4:], crc32.Checksum(b[:sbSlotSize-4], castagnoli))
	return b
}

// writeSuperblock persists the allocator state into the slot the
// previous generation did not use, so a torn superblock write leaves
// the other slot intact. Must be called with d.mu held (or before the
// disk is shared).
func (d *FileDisk) writeSuperblock() error {
	d.gen++
	off := int64(0)
	if d.gen%2 == 1 {
		off = sbSlotB
	}
	return d.writeAt(d.encodeSuperblock(), off)
}

// readSuperblock loads the newest valid slot.
func (d *FileDisk) readSuperblock(wantPageSize int) error {
	best := uint64(0)
	found := false
	for _, off := range []int64{0, sbSlotB} {
		b := make([]byte, sbSlotSize)
		if _, err := d.f.ReadAt(b, off); err != nil {
			continue
		}
		if binary.LittleEndian.Uint64(b[0:]) != sbMagic {
			continue
		}
		if crc32.Checksum(b[:sbSlotSize-4], castagnoli) != binary.LittleEndian.Uint32(b[sbSlotSize-4:]) {
			continue
		}
		gen := binary.LittleEndian.Uint64(b[8:])
		if found && gen <= best {
			continue
		}
		found, best = true, gen
		d.gen = gen
		d.pageSize = int(binary.LittleEndian.Uint64(b[16:]))
		d.nextID = PageID(binary.LittleEndian.Uint64(b[24:]))
		d.maxLSN = binary.LittleEndian.Uint64(b[32:])
	}
	if !found {
		return fmt.Errorf("storage: %s: no valid superblock", d.path)
	}
	if d.pageSize <= 0 {
		return fmt.Errorf("storage: %s: invalid page size %d", d.path, d.pageSize)
	}
	if wantPageSize != DefaultPageSize && wantPageSize > 0 && wantPageSize != d.pageSize {
		return fmt.Errorf("storage: %s: page size %d, want %d", d.path, d.pageSize, wantPageSize)
	}
	return nil
}

// writeAt performs one guarded physical write: the scheduled crashpoint
// may truncate it (torn write) and freeze the file for every later
// operation, simulating a process kill mid-write.
func (d *FileDisk) writeAt(b []byte, off int64) error {
	allowed := len(b)
	var crashErr error
	if d.cp != nil {
		allowed, crashErr = d.cp.admit(len(b))
	}
	if allowed > 0 {
		if _, err := d.f.WriteAt(b[:allowed], off); err != nil {
			return err
		}
	}
	return crashErr
}

// SetCrashpoint installs (or clears, with nil) the crashpoint guarding
// every physical write, read and sync of this file.
func (d *FileDisk) SetCrashpoint(cp *Crashpoint) {
	d.mu.Lock()
	d.cp = cp
	d.mu.Unlock()
}

// Path returns the backing file path.
func (d *FileDisk) Path() string { return d.path }

// MaxLSN returns the highest LSN ever stamped into a page of this file.
func (d *FileDisk) MaxLSN() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.maxLSN
}

// PageSize implements Device.
func (d *FileDisk) PageSize() int { return d.pageSize }

// NumPages implements Device. Because the free list is not persisted,
// after a reopen this counts every page ever allocated.
func (d *FileDisk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.nextID-1) - len(d.free)
}

// Stats implements Device.
func (d *FileDisk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats implements Device.
func (d *FileDisk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = DiskStats{}
}

// Allocate implements Device, reusing freed pages first.
func (d *FileDisk) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var id PageID
	if n := len(d.free); n > 0 {
		id = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		id = d.nextID
		d.nextID++
	}
	d.fresh[id] = true
	d.stats.Allocated++
	return id
}

// ensureAllocated bumps the allocator past id — recovery may redo a
// page the (possibly stale) superblock does not know about yet.
func (d *FileDisk) ensureAllocated(id PageID) {
	d.mu.Lock()
	if id >= d.nextID {
		d.nextID = id + 1
	}
	d.mu.Unlock()
}

// Free implements Device. The id returns to the in-memory free list
// only; on restart un-reused freed pages are leaked (see type comment).
func (d *FileDisk) Free(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id == NilPage || id >= d.nextID {
		return fmt.Errorf("storage: Free(%v): no such page", id)
	}
	delete(d.fresh, id)
	d.free = append(d.free, id)
	d.stats.Freed++
	return nil
}

// Read implements Device, verifying the page checksum. A page that was
// allocated but never written (this run or before a crash) reads as
// zeros; any other checksum mismatch is ErrCorruptPage.
func (d *FileDisk) Read(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: Read(%v): buffer size %d, want %d", id, len(buf), d.pageSize)
	}
	if d.cp != nil && d.cp.Crashed() {
		return fmt.Errorf("storage: Read(%v): %w", id, ErrCrashed)
	}
	if id == NilPage || id >= d.nextID {
		return fmt.Errorf("storage: Read(%v): no such page", id)
	}
	if d.fresh[id] {
		for i := range buf {
			buf[i] = 0
		}
		d.stats.Reads++
		telDiskReads.Inc()
		return nil
	}
	_, _, err := d.readPhys(id, buf)
	if err != nil {
		return err
	}
	d.stats.Reads++
	telDiskReads.Inc()
	return nil
}

// readPhys reads and verifies one page record; must be called with
// d.mu held. buf may be nil (header-only interest). Returns the
// stored LSN and whether the page has ever been written.
func (d *FileDisk) readPhys(id PageID, buf []byte) (lsn uint64, written bool, err error) {
	phys := make([]byte, d.physSize())
	n, rerr := d.f.ReadAt(phys, d.pageOffset(id))
	if rerr != nil && rerr != io.EOF {
		return 0, false, fmt.Errorf("storage: Read(%v): %w", id, rerr)
	}
	for i := n; i < len(phys); i++ {
		phys[i] = 0
	}
	hdr := phys[:pageHeaderSize]
	if allZero(phys) {
		// Never written (or entirely beyond EOF): a fresh page.
		if buf != nil {
			for i := range buf {
				buf[i] = 0
			}
		}
		return 0, false, nil
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[0:])
	gotCRC := crc32.Checksum(phys[4:], castagnoli)
	storedID := binary.LittleEndian.Uint64(hdr[16:])
	if wantCRC != gotCRC || storedID != uint64(id) {
		telChecksumFailures.Inc()
		return 0, true, fmt.Errorf("storage: Read(%v): crc %08x != %08x (stored id %d): %w",
			id, gotCRC, wantCRC, storedID, ErrCorruptPage)
	}
	if buf != nil {
		copy(buf, phys[pageHeaderSize:])
	}
	return binary.LittleEndian.Uint64(hdr[8:]), true, nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// PageLSN returns the LSN stored in a page's header without copying the
// payload: 0 for a never-written page, ErrCorruptPage on checksum
// mismatch. Recovery uses it to decide whether a logged image is newer.
func (d *FileDisk) PageLSN(id PageID) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id == NilPage || id >= d.nextID {
		return 0, fmt.Errorf("storage: PageLSN(%v): no such page", id)
	}
	if d.fresh[id] {
		return 0, nil
	}
	lsn, _, err := d.readPhys(id, nil)
	return lsn, err
}

// Write implements Device. Plain writes preserve the page's stored LSN
// (the write-back of a page dirtied outside any WAL transaction must
// not regress the LSN below images still in the log).
func (d *FileDisk) Write(id PageID, buf []byte) error {
	return d.WriteLSN(id, buf, 0)
}

// WriteLSN stores the page stamping lsn into its header (lsn 0 keeps
// the previously stored LSN). Implements the write half of the WAL
// protocol: the buffer pool calls it with the frame's commit LSN.
func (d *FileDisk) WriteLSN(id PageID, buf []byte, lsn uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: Write(%v): buffer size %d, want %d", id, len(buf), d.pageSize)
	}
	if id == NilPage || id >= d.nextID {
		return fmt.Errorf("storage: Write(%v): no such page", id)
	}
	if lsn == 0 {
		if cur, written, err := d.readPhys(id, nil); err == nil && written {
			lsn = cur
		}
	}
	phys := make([]byte, d.physSize())
	binary.LittleEndian.PutUint32(phys[4:], 0) // flags
	binary.LittleEndian.PutUint64(phys[8:], lsn)
	binary.LittleEndian.PutUint64(phys[16:], uint64(id))
	copy(phys[pageHeaderSize:], buf)
	binary.LittleEndian.PutUint32(phys[0:], crc32.Checksum(phys[4:], castagnoli))
	if err := d.writeAt(phys, d.pageOffset(id)); err != nil {
		return fmt.Errorf("storage: Write(%v): %w", id, err)
	}
	delete(d.fresh, id)
	if lsn > d.maxLSN {
		d.maxLSN = lsn
	}
	d.stats.Writes++
	telDiskWrites.Inc()
	return nil
}

// Sync persists the superblock (allocator watermark, max LSN) and
// fsyncs the file. Called by BufferPool.Checkpoint after flushing.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writeSuperblock(); err != nil {
		return fmt.Errorf("storage: sync %s: %w", d.path, err)
	}
	if d.cp != nil && d.cp.Crashed() {
		return fmt.Errorf("storage: sync %s: %w", d.path, ErrCrashed)
	}
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync %s: %w", d.path, err)
	}
	return nil
}

// Close syncs and closes the file.
func (d *FileDisk) Close() error {
	err := d.Sync()
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// MaxPageID returns the highest page id ever allocated (pages on the
// free list included — the physical extent of the file). The backup
// sweep and the scrubber walk 1..MaxPageID.
func (d *FileDisk) MaxPageID() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nextID - 1
}

// SnapshotHeader returns a copy of the superblock region — the first
// fileHeaderBytes of the file — read under the disk mutex.
func (d *FileDisk) SnapshotHeader() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := make([]byte, fileHeaderBytes)
	if n, err := d.f.ReadAt(b, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("storage: snapshot header: %w", err)
	} else if err == io.EOF {
		for i := n; i < len(b); i++ {
			b[i] = 0
		}
	}
	return b, nil
}

// SnapshotPage reads one raw physical page record (header + payload)
// under the disk mutex, without enforcing the checksum: ok reports
// whether the record verifies. The per-page latch discipline of an
// online backup — each page is copied atomically with respect to
// writers, and queries proceed between pages.
func (d *FileDisk) SnapshotPage(id PageID) (phys []byte, ok bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id == NilPage || id >= d.nextID {
		return nil, false, fmt.Errorf("storage: SnapshotPage(%v): no such page", id)
	}
	phys = make([]byte, d.physSize())
	if d.fresh[id] {
		return phys, true, nil // allocated this run, never written: reads as zeros
	}
	n, rerr := d.f.ReadAt(phys, d.pageOffset(id))
	if rerr != nil && rerr != io.EOF {
		return nil, false, fmt.Errorf("storage: SnapshotPage(%v): %w", id, rerr)
	}
	for i := n; i < len(phys); i++ {
		phys[i] = 0
	}
	if allZero(phys) {
		return phys, true, nil
	}
	hdr := phys[:pageHeaderSize]
	ok = binary.LittleEndian.Uint32(hdr[0:]) == crc32.Checksum(phys[4:], castagnoli) &&
		binary.LittleEndian.Uint64(hdr[16:]) == uint64(id)
	return phys, ok, nil
}

// writePhys stores one raw physical record verbatim (used by Restore to
// lay down backup copies); must be called with d.mu held or before the
// disk is shared.
func (d *FileDisk) writePhys(id PageID, phys []byte) error {
	if len(phys) != int(d.physSize()) {
		return fmt.Errorf("storage: writePhys(%v): record size %d, want %d", id, len(phys), d.physSize())
	}
	if err := d.writeAt(phys, d.pageOffset(id)); err != nil {
		return fmt.Errorf("storage: writePhys(%v): %w", id, err)
	}
	delete(d.fresh, id)
	return nil
}

// zapPage deliberately marks a stored page unreadable (a record whose
// checksum can never verify), so every later read reports
// ErrCorruptPage and the quarantine/Repair machinery takes over.
// Restore uses it on pages whose state is past the PITR target.
func (d *FileDisk) zapPage(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	phys := make([]byte, d.physSize())
	binary.LittleEndian.PutUint64(phys[16:], uint64(id))
	phys[pageHeaderSize] = 0xA5 // non-zero payload so the record is not read as "fresh"
	// Store the complement of the true checksum: guaranteed mismatch.
	binary.LittleEndian.PutUint32(phys[0:], ^crc32.Checksum(phys[4:], castagnoli))
	return d.writePhys(id, phys)
}

// HealPage rewrites page id with data stamped at lsn, but only if the
// stored record currently fails its checksum — checked and written
// atomically under the disk latch, so a heal sourced from an older WAL
// image can never regress a page a concurrent writer just fixed.
// Returns whether the heal was applied.
func (d *FileDisk) HealPage(id PageID, data []byte, lsn uint64) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(data) != d.pageSize {
		return false, fmt.Errorf("storage: HealPage(%v): buffer size %d, want %d", id, len(data), d.pageSize)
	}
	if id == NilPage || id >= d.nextID {
		return false, fmt.Errorf("storage: HealPage(%v): no such page", id)
	}
	if d.fresh[id] {
		return false, nil
	}
	if _, _, err := d.readPhys(id, nil); !errors.Is(err, ErrCorruptPage) {
		return false, err // nil (page is fine now) or a real I/O error
	}
	phys := make([]byte, d.physSize())
	binary.LittleEndian.PutUint32(phys[4:], 0) // flags
	binary.LittleEndian.PutUint64(phys[8:], lsn)
	binary.LittleEndian.PutUint64(phys[16:], uint64(id))
	copy(phys[pageHeaderSize:], data)
	binary.LittleEndian.PutUint32(phys[0:], crc32.Checksum(phys[4:], castagnoli))
	if err := d.writePhys(id, phys); err != nil {
		return false, err
	}
	if lsn > d.maxLSN {
		d.maxLSN = lsn
	}
	return true, nil
}

// bumpMaxLSN raises the superblock LSN watermark (never lowers it);
// Restore seats it at the PITR target so post-restore LSNs stay
// monotonic.
func (d *FileDisk) bumpMaxLSN(lsn uint64) {
	d.mu.Lock()
	if lsn > d.maxLSN {
		d.maxLSN = lsn
	}
	d.mu.Unlock()
}

// CorruptPage deliberately damages stored page bytes starting at off
// within the payload (bypassing the checksum), so tests can prove
// corruption is detected. The in-memory fresh mark is cleared, making
// the damage visible to the next read.
func (d *FileDisk) CorruptPage(id PageID, off int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id == NilPage || id >= d.nextID {
		return fmt.Errorf("storage: CorruptPage(%v): no such page", id)
	}
	delete(d.fresh, id)
	pos := d.pageOffset(id) + pageHeaderSize + int64(off)
	var b [4]byte
	if _, err := d.f.ReadAt(b[:], pos); err != nil && err != io.EOF {
		return err
	}
	for i := range b {
		b[i] ^= 0xA5
	}
	_, err := d.f.WriteAt(b[:], pos)
	return err
}
