package storage

import (
	"sync"
	"testing"
)

func TestShardCountSelection(t *testing.T) {
	d := NewDisk(64)
	// Small bounded pools stay single-shard so eviction order is exact.
	for _, cap := range []int{1, 2, 3, 8, 15} {
		if n := NewBufferPool(d, cap, LRU).NumShards(); n != 1 {
			t.Errorf("capacity %d: %d shards, want 1", cap, n)
		}
	}
	// Explicit shard counts are honored (rounded to a power of two) and
	// never exceed a bounded capacity.
	if n := NewBufferPoolShards(d, 0, LRU, 8).NumShards(); n != 8 {
		t.Errorf("explicit 8 shards: got %d", n)
	}
	if n := NewBufferPoolShards(d, 0, LRU, 5).NumShards(); n != 8 {
		t.Errorf("explicit 5 shards: got %d, want rounded to 8", n)
	}
	if n := NewBufferPoolShards(d, 4, LRU, 16).NumShards(); n != 4 {
		t.Errorf("capacity 4 with 16 shards: got %d, want clamped to 4", n)
	}
}

func TestShardCapacityDistribution(t *testing.T) {
	d := NewDisk(64)
	pool := NewBufferPoolShards(d, 10, LRU, 4)
	total := 0
	for _, s := range pool.shards {
		if s.capacity < 2 || s.capacity > 3 {
			t.Errorf("shard capacity %d outside [2,3]", s.capacity)
		}
		total += s.capacity
	}
	if total != 10 {
		t.Errorf("shard capacities sum to %d, want 10", total)
	}

	// An unbounded pool has unbounded shards.
	for _, s := range NewBufferPoolShards(d, 0, LRU, 4).shards {
		if s.capacity != 0 {
			t.Errorf("unbounded pool has shard capacity %d", s.capacity)
		}
	}
}

func TestShardStatsSumToPoolStats(t *testing.T) {
	d := NewDisk(64)
	pool := NewBufferPoolShards(d, 0, LRU, 4)
	var ids []PageID
	for i := 0; i < 64; i++ {
		ids = append(ids, d.Allocate())
	}
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			f, err := pool.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			f.Unpin()
		}
	}
	var sum BufferStats
	nonEmpty := 0
	for _, st := range pool.ShardStats() {
		if st.LogicalAccesses > 0 {
			nonEmpty++
		}
		sum.add(st)
	}
	if got := pool.Stats(); sum != got {
		t.Errorf("shard stats sum %+v != pool stats %+v", sum, got)
	}
	if nonEmpty < 2 {
		t.Errorf("only %d shards saw traffic; hash is not spreading pages", nonEmpty)
	}
	pool.ResetStats()
	var zero BufferStats
	for i, st := range pool.ShardStats() {
		if st != zero {
			t.Errorf("shard %d stats not reset: %+v", i, st)
		}
	}
}

func TestShardedEvictionStaysWithinCapacity(t *testing.T) {
	for _, policy := range []ReplacementPolicy{LRU, FIFO, Clock} {
		d := NewDisk(64)
		pool := NewBufferPoolShards(d, 32, policy, 4)
		for i := 0; i < 200; i++ {
			f, err := pool.Get(d.Allocate())
			if err != nil {
				t.Fatalf("%v: %v", policy, err)
			}
			f.Data()[0] = byte(i)
			f.MarkDirty()
			f.Unpin()
		}
		if r := pool.Resident(); r > 32 {
			t.Errorf("%v: resident %d exceeds capacity 32", policy, r)
		}
		if pool.Stats().Evictions == 0 {
			t.Errorf("%v: no evictions despite overflow", policy)
		}
		if err := pool.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedPoolConcurrentStress drives every pool entry point from
// many goroutines at once under -race: pins of overlapping page sets,
// fresh allocations, discards of retired pages, flushes and stats
// snapshots. The assertions are structural (no errors besides legal
// pinned-discard conflicts, all data readable afterwards); the real
// check is the race detector.
func TestShardedPoolConcurrentStress(t *testing.T) {
	d := NewDisk(64)
	pool := NewBufferPoolShards(d, 64, LRU, 8)
	var ids []PageID
	for i := 0; i < 128; i++ {
		ids = append(ids, d.Allocate())
	}

	const workers = 8
	const rounds = 300
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 5 {
				case 0, 1, 2: // pin an existing page, touch it, unpin
					id := ids[(w*rounds+i*7)%len(ids)]
					f, err := pool.Get(id)
					if err != nil {
						errc <- err
						return
					}
					_ = f.Data()[0]
					f.Unpin()
				case 3: // allocate and dirty a fresh page
					f, err := pool.GetNew()
					if err != nil {
						errc <- err
						return
					}
					f.Data()[0] = byte(w)
					f.MarkDirty()
					f.Unpin()
				case 4: // flush or snapshot
					if w%2 == 0 {
						if err := pool.FlushAll(); err != nil {
							errc <- err
							return
						}
					} else {
						_ = pool.Stats()
						_ = pool.ShardStats()
						_ = pool.Resident()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Discards of unpinned pages race against nothing now; all must
	// succeed, and the data must still be on disk afterwards.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := pool.Discard(id); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 64)
	for _, id := range ids {
		if err := d.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedPoolConcurrentUndo exercises undo capture from concurrent
// reader pins across shards while a writer mutates under a transaction,
// then rolls back — the transactional-maintenance pattern.
func TestShardedPoolConcurrentUndo(t *testing.T) {
	d := NewDisk(64)
	pool := NewBufferPoolShards(d, 0, LRU, 8)
	var ids []PageID
	for i := 0; i < 32; i++ {
		id := d.Allocate()
		f, _ := pool.Get(id)
		f.Data()[0] = 0xAA
		f.MarkDirty()
		f.Unpin()
		ids = append(ids, id)
	}

	txn, err := pool.BeginUndo()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.BeginUndo(); err == nil {
		t.Fatal("second BeginUndo accepted")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f, err := pool.Get(ids[(w+i)%len(ids)])
				if err != nil {
					return
				}
				_ = f.Data()[0]
				f.Unpin()
			}
		}(w)
	}

	// Writer mutates half the pages and allocates fresh ones.
	for i, id := range ids[:16] {
		f, err := pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i)
		f.MarkDirty()
		f.Unpin()
	}
	var freshIDs []PageID
	for i := 0; i < 8; i++ {
		f, err := pool.GetNew()
		if err != nil {
			t.Fatal(err)
		}
		freshIDs = append(freshIDs, f.ID())
		f.MarkDirty()
		f.Unpin()
	}
	close(stop)
	wg.Wait()

	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for _, id := range ids {
		if err := d.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0xAA {
			t.Fatalf("page %v not rolled back: %x", id, buf[0])
		}
	}
	for _, id := range freshIDs {
		if err := d.Read(id, buf); err == nil {
			t.Fatalf("fresh page %v survived rollback", id)
		}
	}

	// The pool accepts a new transaction after the old one finished.
	txn2, err := pool.BeginUndo()
	if err != nil {
		t.Fatal(err)
	}
	txn2.Commit()
}
