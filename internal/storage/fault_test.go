package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultInjectorScheduledReadWrite(t *testing.T) {
	d := NewDisk(64)
	fi := NewFaultInjector(d, 1)
	id := fi.Allocate()
	buf := make([]byte, 64)

	// Transient write fault: fires once, then clears.
	fi.Schedule(Fault{Op: OpWrite, Page: id})
	if err := fi.Write(id, buf); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("scheduled write fault did not fire: %v", err)
	}
	if err := fi.Write(id, buf); err != nil {
		t.Fatalf("transient fault did not clear: %v", err)
	}

	// Permanent read fault on a specific page keeps firing; other pages
	// are untouched.
	other := fi.Allocate()
	fi.Schedule(Fault{Op: OpRead, Page: id, Permanent: true})
	for i := 0; i < 3; i++ {
		if err := fi.Read(id, buf); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("permanent read fault stopped firing on attempt %d: %v", i, err)
		}
	}
	if err := fi.Read(other, buf); err != nil {
		t.Fatalf("fault leaked to unrelated page: %v", err)
	}
	fi.Heal()
	if err := fi.Read(id, buf); err != nil {
		t.Fatalf("Heal did not clear faults: %v", err)
	}
	st := fi.FaultStats()
	if st.ReadFaults != 3 || st.WriteFaults != 1 {
		t.Fatalf("stats = %+v, want 3 read / 1 write faults", st)
	}
}

func TestFaultInjectorSkipCountsMatches(t *testing.T) {
	d := NewDisk(64)
	fi := NewFaultInjector(d, 1)
	id := fi.Allocate()
	buf := make([]byte, 64)
	fi.Schedule(Fault{Op: OpWrite, Skip: 2})
	for i := 0; i < 2; i++ {
		if err := fi.Write(id, buf); err != nil {
			t.Fatalf("write %d should be let through: %v", i, err)
		}
	}
	if err := fi.Write(id, buf); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("third write should fault: %v", err)
	}
}

func TestFaultInjectorTornWrite(t *testing.T) {
	d := NewDisk(64)
	fi := NewFaultInjector(d, 1)
	id := fi.Allocate()
	old := bytes.Repeat([]byte{0xAA}, 64)
	if err := fi.Write(id, old); err != nil {
		t.Fatal(err)
	}
	fi.Schedule(Fault{Op: OpWrite, Page: id, TornFraction: 0.5})
	next := bytes.Repeat([]byte{0xBB}, 64)
	if err := fi.Write(id, next); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("torn write did not report failure: %v", err)
	}
	got := make([]byte, 64)
	if err := fi.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:32], next[:32]) || !bytes.Equal(got[32:], old[32:]) {
		t.Fatalf("torn write should persist exactly the first half: got %x", got)
	}
	if st := fi.FaultStats(); st.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", st.TornWrites)
	}
}

func TestFaultInjectorProbabilisticDeterminism(t *testing.T) {
	run := func() []bool {
		d := NewDisk(64)
		fi := NewFaultInjector(d, 42)
		fi.FailProbabilistically(0, 0.5)
		id := fi.Allocate()
		buf := make([]byte, 64)
		var outcomes []bool
		for i := 0; i < 32; i++ {
			outcomes = append(outcomes, fi.Write(id, buf) != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	failed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different outcome at op %d", i)
		}
		if a[i] {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Fatalf("probabilistic mode fired %d/%d times; expected a mix", failed, len(a))
	}
}

func TestBufferPoolWriteBackErrorCounted(t *testing.T) {
	d := NewDisk(64)
	fi := NewFaultInjector(d, 1)
	pool := NewBufferPool(fi, 0, LRU)
	fr, err := pool.GetNew()
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 7
	fr.MarkDirty()
	fr.Unpin()

	fi.Schedule(Fault{Op: OpWrite, Permanent: true})
	if err := pool.FlushAll(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("FlushAll should surface the write-back failure: %v", err)
	}
	if st := pool.Stats(); st.WriteBackErrors != 1 {
		t.Fatalf("WriteBackErrors = %d, want 1", st.WriteBackErrors)
	}
	// The frame stayed dirty: healing the device and re-flushing persists it.
	fi.Heal()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := d.Read(fr.ID(), buf); err != nil || buf[0] != 7 {
		t.Fatalf("data lost after retried flush: %v %v", buf[0], err)
	}
}

func TestBufferPoolFlushAllContinuesPastFailures(t *testing.T) {
	d := NewDisk(64)
	fi := NewFaultInjector(d, 1)
	pool := NewBufferPool(fi, 0, LRU)
	var ids []PageID
	for i := 0; i < 4; i++ {
		fr, err := pool.GetNew()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	// Exactly one page faults; the other three must still be flushed.
	fi.Schedule(Fault{Op: OpWrite, Page: ids[1], Permanent: true})
	if err := pool.FlushAll(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("expected injected fault from FlushAll, got %v", err)
	}
	flushed := 0
	for _, id := range ids {
		buf := make([]byte, 64)
		if err := d.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0 {
			flushed++
		}
	}
	if flushed != 3 {
		t.Fatalf("flushed %d pages despite one fault, want 3", flushed)
	}
}

func TestUndoTxnRollbackRestoresPages(t *testing.T) {
	d := NewDisk(64)
	pool := NewBufferPool(d, 0, LRU)
	fr, err := pool.GetNew()
	if err != nil {
		t.Fatal(err)
	}
	id := fr.ID()
	fr.Data()[0] = 1
	fr.MarkDirty()
	fr.Unpin()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	txn, err := pool.BeginUndo()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.BeginUndo(); err == nil {
		t.Fatal("second BeginUndo should fail while one is active")
	}
	// Mutate the existing page and allocate a fresh one inside the txn.
	fr2, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	fr2.Data()[0] = 99
	fr2.MarkDirty()
	fr2.Unpin()
	frNew, err := pool.GetNew()
	if err != nil {
		t.Fatal(err)
	}
	newID := frNew.ID()
	frNew.Unpin()
	pagesDuring := d.NumPages()

	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	got, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data()[0] != 1 {
		t.Fatalf("rollback did not restore page: got %d", got.Data()[0])
	}
	got.Unpin()
	if d.NumPages() != pagesDuring-1 {
		t.Fatalf("fresh page %v not freed on rollback", newID)
	}
	// The pool is reusable: a new txn can start and commit.
	txn2, err := pool.BeginUndo()
	if err != nil {
		t.Fatal(err)
	}
	txn2.Commit()
}

func TestUndoTxnRollbackReinstatesEvictedPages(t *testing.T) {
	d := NewDisk(64)
	// Tiny pool: mutations force evictions (and write-backs) mid-txn.
	pool := NewBufferPool(d, 2, LRU)
	var ids []PageID
	for i := 0; i < 4; i++ {
		fr, err := pool.GetNew()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(10 + i)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pre := d.Snapshot()

	txn, err := pool.BeginUndo()
	if err != nil {
		t.Fatal(err)
	}
	// Touch every page so each is captured, mutated, and — capacity 2 —
	// evicted with its post-image written back.
	for _, id := range ids {
		fr, err := pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = 77
		fr.MarkDirty()
		fr.Unpin()
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	post := d.Snapshot()
	for id, want := range pre {
		if !bytes.Equal(post[id], want) {
			t.Fatalf("page %v not byte-identical after rollback+flush", id)
		}
	}
}

func TestUndoTxnCommitKeepsMutations(t *testing.T) {
	d := NewDisk(64)
	pool := NewBufferPool(d, 0, LRU)
	fr, err := pool.GetNew()
	if err != nil {
		t.Fatal(err)
	}
	id := fr.ID()
	fr.Unpin()

	txn, err := pool.BeginUndo()
	if err != nil {
		t.Fatal(err)
	}
	fr2, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	fr2.Data()[0] = 5
	fr2.MarkDirty()
	fr2.Unpin()
	txn.Commit()

	got, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Unpin()
	if got.Data()[0] != 5 {
		t.Fatalf("commit lost mutation: got %d", got.Data()[0])
	}
	if err := txn.Rollback(); err == nil {
		t.Fatal("Rollback after Commit should fail")
	}
}
