package storage

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestFileDiskRoundTripAndPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	d, err := OpenFileDisk(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id := d.Allocate()

	// A fresh page reads as zeros.
	buf := make([]byte, 128)
	buf[0] = 0xFF
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	for i, c := range buf {
		if c != 0 {
			t.Fatalf("fresh page byte %d = %#x, want 0", i, c)
		}
	}

	want := make([]byte, 128)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := d.WriteLSN(id, want, 42); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: page size comes from the superblock, data and LSN persist,
	// and the allocator never re-hands-out the page.
	d2, err := OpenFileDisk(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.PageSize() != 128 {
		t.Fatalf("reopened page size %d, want 128", d2.PageSize())
	}
	got := make([]byte, 128)
	if err := d2.Read(id, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want[i])
		}
	}
	if lsn, err := d2.PageLSN(id); err != nil || lsn != 42 {
		t.Fatalf("PageLSN = %d, %v; want 42, nil", lsn, err)
	}
	if id2 := d2.Allocate(); id2 == id {
		t.Fatalf("allocator reused page %v after reopen", id)
	}
}

func TestFileDiskConflictingPageSizeRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	d, err := OpenFileDisk(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := OpenFileDisk(path, 256); err == nil {
		t.Fatal("reopen with conflicting page size succeeded")
	}
}

func TestFileDiskPlainWritePreservesLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	d, err := OpenFileDisk(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id := d.Allocate()
	buf := make([]byte, 64)
	if err := d.WriteLSN(id, buf, 9); err != nil {
		t.Fatal(err)
	}
	buf[0] = 1
	if err := d.Write(id, buf); err != nil { // plain write, lsn 0
		t.Fatal(err)
	}
	if lsn, err := d.PageLSN(id); err != nil || lsn != 9 {
		t.Fatalf("PageLSN after plain write = %d, %v; want preserved 9, nil", lsn, err)
	}
}

func TestFileDiskDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	d, err := OpenFileDisk(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id := d.Allocate()
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := d.WriteLSN(id, buf, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.CorruptPage(id, 10); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(id, buf); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("Read of corrupted page = %v, want ErrCorruptPage", err)
	}
	if _, err := d.PageLSN(id); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("PageLSN of corrupted page = %v, want ErrCorruptPage", err)
	}
}

func TestFileDiskCrashpointTearsWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	d, err := OpenFileDisk(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	id := d.Allocate()
	buf := make([]byte, 64)
	if err := d.WriteLSN(id, buf, 1); err != nil {
		t.Fatal(err)
	}
	// Second admitted write is torn halfway and the file freezes.
	cp := NewCrashpoint(2, 0.5)
	d.SetCrashpoint(cp)
	for i := range buf {
		buf[i] = 0xEE
	}
	if err := d.WriteLSN(id, buf, 1); err != nil {
		t.Fatal(err)
	}
	// New content for the torn write, so the half-written record mixes
	// old and new payload bytes and fails its checksum.
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := d.WriteLSN(id, buf, 2); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write at crashpoint = %v, want ErrCrashed", err)
	}
	if !cp.Crashed() {
		t.Fatal("crashpoint did not fire")
	}
	if err := d.Read(id, buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash = %v, want ErrCrashed", err)
	}
	// Reopen the frozen file as a new process would: the torn page fails
	// its checksum.
	d2, err := OpenFileDisk(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d2.Read(id, buf); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("read of torn page after reopen = %v, want ErrCorruptPage", err)
	}
}
