// Package storage simulates the secondary-storage layer that the paper's
// cost model charges against: fixed-size pages (net size 4056 bytes, the
// paper's system parameter), a simulated disk with access accounting, a
// pinning buffer pool with pluggable replacement, and type-clustered
// record segments. Both the B⁺-trees holding access support relation
// partitions (package btree) and the object segments allocate from this
// layer, so measured page accesses are directly comparable with the
// analytical model of package costmodel.
package storage

import (
	"fmt"
	"sync"
)

// Paper system parameters (Figure 3).
const (
	// DefaultPageSize is the net page size in bytes.
	DefaultPageSize = 4056
	// OIDSize is the stored size of an object identifier in bytes.
	OIDSize = 8
	// PagePointerSize is the stored size of a page pointer in bytes.
	PagePointerSize = 4
)

// PageID identifies a disk page. The zero value is the nil page.
type PageID uint64

// NilPage is the absent page reference.
const NilPage PageID = 0

// IsNil reports whether the id is the nil page.
func (id PageID) IsNil() bool { return id == NilPage }

// String renders the page id.
func (id PageID) String() string {
	if id == NilPage {
		return "page:nil"
	}
	return fmt.Sprintf("page:%d", uint64(id))
}

// DiskStats counts physical page transfers.
type DiskStats struct {
	Reads     uint64
	Writes    uint64
	Allocated uint64
	Freed     uint64
}

// Device is the page-device abstraction the buffer pool sits on: a
// plain simulated Disk, or a FaultInjector wrapping one to exercise
// error paths. All implementations must be safe for concurrent use.
type Device interface {
	// PageSize returns the page size in bytes.
	PageSize() int
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Allocate reserves a fresh zeroed page and returns its id.
	Allocate() PageID
	// Free releases a page.
	Free(id PageID) error
	// Read copies the page contents into buf (PageSize bytes long).
	Read(id PageID, buf []byte) error
	// Write stores the page contents from buf (PageSize bytes long).
	Write(id PageID, buf []byte) error
	// Stats returns a copy of the transfer counters.
	Stats() DiskStats
	// ResetStats zeroes the transfer counters.
	ResetStats()
}

// LSNWriter is implemented by devices that stamp a log sequence number
// into the stored page header (FileDisk). The buffer pool uses it to
// persist each frame's commit LSN so Recover can compare stored pages
// against logged images.
type LSNWriter interface {
	WriteLSN(id PageID, buf []byte, lsn uint64) error
}

// Syncer is implemented by devices with a durability barrier (FileDisk
// fsync). Checkpoint calls it after flushing dirty frames.
type Syncer interface {
	Sync() error
}

// Disk is a simulated secondary-storage device holding fixed-size pages.
// All traffic is counted in Stats; the buffer pool sits on top and only
// touches the disk on misses and write-backs.
//
// A Disk is safe for concurrent use; every method takes an internal
// mutex, mirroring a device that serializes transfers.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	pages    map[PageID][]byte
	next     PageID
	stats    DiskStats
}

// NewDisk creates an empty disk with the given page size (DefaultPageSize
// when ≤ 0).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{pageSize: pageSize, pages: make(map[PageID][]byte), next: 1}
}

// PageSize returns the page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// Stats returns a copy of the transfer counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the transfer counters.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = DiskStats{}
}

// Allocate reserves a fresh zeroed page and returns its id.
func (d *Disk) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.next
	d.next++
	d.pages[id] = make([]byte, d.pageSize)
	d.stats.Allocated++
	return id
}

// Free releases a page.
func (d *Disk) Free(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.pages[id]; !ok {
		return fmt.Errorf("storage: Free(%v): no such page", id)
	}
	delete(d.pages, id)
	d.stats.Freed++
	return nil
}

// Snapshot returns a deep copy of every allocated page keyed by id —
// the ground truth a test compares against after a rollback.
func (d *Disk) Snapshot() map[PageID][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[PageID][]byte, len(d.pages))
	for id, p := range d.pages {
		out[id] = append([]byte(nil), p...)
	}
	return out
}

// Read copies the page contents into buf (which must be PageSize long).
func (d *Disk) Read(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("storage: Read(%v): no such page", id)
	}
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: Read(%v): buffer size %d, want %d", id, len(buf), d.pageSize)
	}
	copy(buf, p)
	d.stats.Reads++
	telDiskReads.Inc()
	return nil
}

// Write stores the page contents from buf (which must be PageSize long).
func (d *Disk) Write(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("storage: Write(%v): no such page", id)
	}
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: Write(%v): buffer size %d, want %d", id, len(buf), d.pageSize)
	}
	copy(p, buf)
	d.stats.Writes++
	telDiskWrites.Inc()
	return nil
}
