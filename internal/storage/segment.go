package storage

import (
	"fmt"
)

// RecordID addresses a record within a Segment.
type RecordID struct {
	Page PageID
	Slot int
}

// IsNil reports whether the record id is unset.
func (r RecordID) IsNil() bool { return r.Page.IsNil() }

// Segment is a type-clustered sequence of fixed-size records, the
// paper's object storage model (§5.5): objects are clustered by type, so
// a type with c_i objects of size_i bytes occupies
// op_i = ceil(c_i / floor(PageSize/size_i)) pages. Every record access
// goes through the buffer pool and is therefore counted.
type Segment struct {
	pool       *BufferPool
	name       string
	recordSize int
	perPage    int
	pages      []PageID
	nextSlot   int // next free slot on the last page
	free       []RecordID
	count      int
}

// NewSegment creates a record segment; recordSize must fit a page.
func NewSegment(pool *BufferPool, name string, recordSize int) (*Segment, error) {
	if recordSize <= 0 {
		return nil, fmt.Errorf("storage: segment %q: record size %d must be positive", name, recordSize)
	}
	if recordSize > pool.Disk().PageSize() {
		return nil, fmt.Errorf("storage: segment %q: record size %d exceeds page size %d",
			name, recordSize, pool.Disk().PageSize())
	}
	return &Segment{
		pool:       pool,
		name:       name,
		recordSize: recordSize,
		perPage:    pool.Disk().PageSize() / recordSize,
	}, nil
}

// Name returns the segment name.
func (s *Segment) Name() string { return s.name }

// RecordSize returns the fixed record size in bytes.
func (s *Segment) RecordSize() int { return s.recordSize }

// RecordsPerPage returns floor(PageSize / recordSize), the paper's opp_i.
func (s *Segment) RecordsPerPage() int { return s.perPage }

// NumPages returns the allocated page count, the paper's op_i.
func (s *Segment) NumPages() int { return len(s.pages) }

// Count returns the live record count.
func (s *Segment) Count() int { return s.count }

// Insert stores a record (padded or truncated to the record size) and
// returns its address. Freed slots are reused before new pages are
// allocated.
func (s *Segment) Insert(data []byte) (RecordID, error) {
	var id RecordID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		if len(s.pages) == 0 || s.nextSlot >= s.perPage {
			fr, err := s.pool.GetNew()
			if err != nil {
				return RecordID{}, err
			}
			s.pages = append(s.pages, fr.ID())
			s.nextSlot = 0
			fr.Unpin()
		}
		id = RecordID{Page: s.pages[len(s.pages)-1], Slot: s.nextSlot}
		s.nextSlot++
	}
	if err := s.Write(id, data); err != nil {
		return RecordID{}, err
	}
	s.count++
	return id, nil
}

// Read copies the record into buf (at most recordSize bytes), charging
// one page access.
func (s *Segment) Read(id RecordID, buf []byte) error {
	fr, err := s.frameFor(id)
	if err != nil {
		return err
	}
	defer fr.Unpin()
	copy(buf, fr.Data()[id.Slot*s.recordSize:(id.Slot+1)*s.recordSize])
	return nil
}

// Write overwrites the record, charging one page access.
func (s *Segment) Write(id RecordID, data []byte) error {
	if len(data) > s.recordSize {
		return fmt.Errorf("storage: segment %q: record of %d bytes exceeds record size %d",
			s.name, len(data), s.recordSize)
	}
	fr, err := s.frameFor(id)
	if err != nil {
		return err
	}
	defer fr.Unpin()
	slot := fr.Data()[id.Slot*s.recordSize : (id.Slot+1)*s.recordSize]
	copy(slot, data)
	for i := len(data); i < s.recordSize; i++ {
		slot[i] = 0
	}
	fr.MarkDirty()
	return nil
}

// Touch charges one page access for the record without transferring
// data; used by the query engine when only reference fields matter and
// they are cached elsewhere.
func (s *Segment) Touch(id RecordID) error {
	fr, err := s.frameFor(id)
	if err != nil {
		return err
	}
	fr.Unpin()
	return nil
}

// Delete frees the record's slot for reuse.
func (s *Segment) Delete(id RecordID) error {
	if err := s.validate(id); err != nil {
		return err
	}
	s.free = append(s.free, id)
	if s.count > 0 {
		s.count--
	}
	return nil
}

// ScanPages performs a sequential scan: each allocated page is fetched
// once and fn is called with the page's records. fn returning false
// stops the scan early.
func (s *Segment) ScanPages(fn func(page PageID, records [][]byte) bool) error {
	for _, pid := range s.pages {
		fr, err := s.pool.Get(pid)
		if err != nil {
			return err
		}
		recs := make([][]byte, s.perPage)
		for i := 0; i < s.perPage; i++ {
			recs[i] = fr.Data()[i*s.recordSize : (i+1)*s.recordSize]
		}
		cont := fn(pid, recs)
		fr.Unpin()
		if !cont {
			return nil
		}
	}
	return nil
}

func (s *Segment) validate(id RecordID) error {
	if id.Slot < 0 || id.Slot >= s.perPage {
		return fmt.Errorf("storage: segment %q: slot %d out of range [0,%d)", s.name, id.Slot, s.perPage)
	}
	for _, p := range s.pages {
		if p == id.Page {
			return nil
		}
	}
	return fmt.Errorf("storage: segment %q: page %v not in segment", s.name, id.Page)
}

func (s *Segment) frameFor(id RecordID) (*Frame, error) {
	if err := s.validate(id); err != nil {
		return nil, err
	}
	return s.pool.Get(id.Page)
}
