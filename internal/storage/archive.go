package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// WAL segment archiving: instead of discarding log history at every
// checkpoint (WAL.Reset), the trusted prefix of the log is sealed into
// an archive directory as an immutable, checksummed segment file. The
// archive is the replay source for point-in-time recovery (Restore) and
// for healing torn pages in an online backup — history beyond the last
// checkpoint stays recoverable for as long as the retention policy
// keeps it (Prune, tied to the backup chain).
//
// Segment file layout (little-endian):
//
//	magic   u64  "ASRWARC1"
//	version u32
//	records u32  record count in the payload
//	first   u64  LSN of the first record
//	last    u64  LSN of the last record
//	paylen  u64  payload length in bytes
//	paycrc  u32  CRC32C over the payload
//	hdrcrc  u32  CRC32C over the 44 header bytes above
//	payload      raw WAL record stream (the on-disk WAL framing,
//	             each record individually checksummed as well)
//
// Segments are written tmp+rename with file and directory fsyncs, so a
// crash mid-seal leaves at worst an ignored *.tmp file — never a half
// segment under the sealed name.
const (
	segMagic      = 0x4153525741524331 // "ASRWARC1"
	segVersion    = 1
	segHeaderSize = 48

	// SegmentSuffix is the file suffix of sealed archive segments.
	SegmentSuffix = ".walseg"
)

// Errors the archive reports. ErrArchiveCorrupt wraps every checksum or
// framing failure inside a sealed segment; ErrArchiveGap means the
// archived LSN chain has a hole before the requested replay target
// (a segment was lost or pruned too aggressively).
var (
	ErrArchiveCorrupt = errors.New("archive: corrupt segment")
	ErrArchiveGap     = errors.New("archive: LSN chain gap")
)

// SegmentInfo describes one sealed segment.
type SegmentInfo struct {
	Path    string
	First   uint64 // LSN of the first record
	Last    uint64 // LSN of the last record
	Records int
	Bytes   int64 // payload bytes
}

// Archive is a directory of sealed WAL segments. It is safe for
// concurrent use; sealing, listing, replaying and pruning serialize on
// one mutex (all are cold-path operations).
type Archive struct {
	mu  sync.Mutex
	dir string
	cp  *Crashpoint
}

// OpenArchive opens (creating if needed) an archive directory.
func OpenArchive(dir string) (*Archive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open archive %s: %w", dir, err)
	}
	return &Archive{dir: dir}, nil
}

// Dir returns the archive directory.
func (a *Archive) Dir() string { return a.dir }

// SetCrashpoint installs (or clears) the crashpoint gating segment
// writes, so crash tests can tear a seal mid-write.
func (a *Archive) SetCrashpoint(cp *Crashpoint) {
	a.mu.Lock()
	a.cp = cp
	a.mu.Unlock()
}

// segName renders the canonical segment file name for an LSN range.
func segName(first, last uint64) string {
	return fmt.Sprintf("seg-%016x-%016x%s", first, last, SegmentSuffix)
}

// encodeSegHeader renders the 48-byte segment header.
func encodeSegHeader(records int, first, last uint64, payload []byte) []byte {
	h := make([]byte, segHeaderSize)
	binary.LittleEndian.PutUint64(h[0:], segMagic)
	binary.LittleEndian.PutUint32(h[8:], segVersion)
	binary.LittleEndian.PutUint32(h[12:], uint32(records))
	binary.LittleEndian.PutUint64(h[16:], first)
	binary.LittleEndian.PutUint64(h[24:], last)
	binary.LittleEndian.PutUint64(h[32:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(h[40:], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(h[44:], crc32.Checksum(h[:44], castagnoli))
	return h
}

// readSegHeader parses and verifies a segment header.
func readSegHeader(b []byte) (records int, first, last, paylen uint64, paycrc uint32, err error) {
	if len(b) < segHeaderSize {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: short header", ErrArchiveCorrupt)
	}
	if binary.LittleEndian.Uint64(b[0:]) != segMagic {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: bad magic", ErrArchiveCorrupt)
	}
	if crc32.Checksum(b[:44], castagnoli) != binary.LittleEndian.Uint32(b[44:]) {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: header checksum mismatch", ErrArchiveCorrupt)
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != segVersion {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: segment version %d", ErrArchiveCorrupt, v)
	}
	return int(binary.LittleEndian.Uint32(b[12:])),
		binary.LittleEndian.Uint64(b[16:]),
		binary.LittleEndian.Uint64(b[24:]),
		binary.LittleEndian.Uint64(b[32:]),
		binary.LittleEndian.Uint32(b[40:]), nil
}

// seal writes one segment covering recs (whose raw framing is payload).
// Idempotent: re-sealing the same range overwrites the identical file.
// Must be called with a.mu held.
func (a *Archive) sealLocked(payload []byte, recs []WALRecord) (SegmentInfo, error) {
	if len(recs) == 0 {
		return SegmentInfo{}, errors.New("storage: archive seal: no records")
	}
	first, last := recs[0].LSN, recs[len(recs)-1].LSN
	name := segName(first, last)
	final := filepath.Join(a.dir, name)
	tmp := final + ".tmp"
	data := append(encodeSegHeader(len(recs), first, last, payload), payload...)

	allowed := len(data)
	var crashErr error
	if a.cp != nil {
		allowed, crashErr = a.cp.admit(len(data))
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return SegmentInfo{}, fmt.Errorf("storage: archive seal: %w", err)
	}
	if allowed > 0 {
		if _, err := f.Write(data[:allowed]); err != nil {
			f.Close()
			return SegmentInfo{}, fmt.Errorf("storage: archive seal: %w", err)
		}
	}
	if crashErr != nil {
		f.Close()
		return SegmentInfo{}, fmt.Errorf("storage: archive seal: %w", crashErr)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return SegmentInfo{}, fmt.Errorf("storage: archive seal: %w", err)
	}
	if err := f.Close(); err != nil {
		return SegmentInfo{}, fmt.Errorf("storage: archive seal: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return SegmentInfo{}, fmt.Errorf("storage: archive seal: %w", err)
	}
	if err := syncDir(a.dir); err != nil {
		return SegmentInfo{}, fmt.Errorf("storage: archive seal: %w", err)
	}
	telArchiveSealed.Inc()
	telArchiveBytes.Add(uint64(len(payload)))
	return SegmentInfo{Path: final, First: first, Last: last, Records: len(recs), Bytes: int64(len(payload))}, nil
}

// seal is sealLocked behind the archive mutex.
func (a *Archive) seal(payload []byte, recs []WALRecord) (SegmentInfo, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sealLocked(payload, recs)
}

// Seal scans raw (a WAL record stream) and seals its valid prefix as
// one segment. Trailing torn bytes are rejected — the caller seals only
// fully trusted log prefixes.
func (a *Archive) Seal(raw []byte) (SegmentInfo, error) {
	recs, validLen, damaged := scanWALBytes(raw)
	if damaged {
		return SegmentInfo{}, fmt.Errorf("storage: archive seal: raw stream has a damaged tail at byte %d", validLen)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sealLocked(raw[:validLen], recs)
}

// SealTail archives the not-yet-archived tail of a WAL file — the
// records in its valid prefix with LSNs above the archive's high-water
// mark. This is the PITR step an operator runs over a crashed primary's
// surviving log before Restore (the analogue of copying the last
// partial pg_wal segment into the archive). It returns false when the
// log holds nothing new.
func (a *Archive) SealTail(walPath string) (SegmentInfo, bool, error) {
	raw, err := os.ReadFile(walPath)
	if err != nil {
		return SegmentInfo{}, false, fmt.Errorf("storage: archive seal tail: %w", err)
	}
	recs, _, _ := scanWALBytes(raw) // a torn tail past the valid prefix is expected after a crash
	a.mu.Lock()
	defer a.mu.Unlock()
	high, _, err := a.maxLSNLocked()
	if err != nil {
		return SegmentInfo{}, false, err
	}
	var fresh []WALRecord
	var payload []byte
	for _, r := range recs {
		if r.LSN <= high {
			continue
		}
		fresh = append(fresh, r)
		payload = append(payload, EncodeWALRecord(r)...)
	}
	if len(fresh) == 0 {
		return SegmentInfo{}, false, nil
	}
	info, err := a.sealLocked(payload, fresh)
	return info, err == nil, err
}

// Segments lists the sealed segments sorted by first LSN. Files with
// the segment suffix whose header fails verification are returned in
// damaged (and counted) rather than aborting the listing — one rotted
// segment must not hide the healthy chain.
func (a *Archive) Segments() (segs []SegmentInfo, damaged []string, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.segmentsLocked()
}

func (a *Archive) segmentsLocked() (segs []SegmentInfo, damaged []string, err error) {
	ents, err := os.ReadDir(a.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: archive list: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), SegmentSuffix) {
			continue
		}
		path := filepath.Join(a.dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("storage: archive list: %w", err)
		}
		h := make([]byte, segHeaderSize)
		n, _ := f.Read(h)
		st, serr := f.Stat()
		f.Close()
		records, first, last, paylen, _, herr := readSegHeader(h[:n])
		if herr != nil || serr != nil || st.Size() != int64(segHeaderSize)+int64(paylen) {
			telArchiveCorrupt.Inc()
			damaged = append(damaged, path)
			continue
		}
		segs = append(segs, SegmentInfo{Path: path, First: first, Last: last, Records: records, Bytes: int64(paylen)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].First < segs[j].First })
	return segs, damaged, nil
}

// maxLSNLocked returns the highest archived LSN (0 when empty).
func (a *Archive) maxLSNLocked() (uint64, int, error) {
	segs, _, err := a.segmentsLocked()
	if err != nil {
		return 0, 0, err
	}
	var high uint64
	for _, s := range segs {
		if s.Last > high {
			high = s.Last
		}
	}
	return high, len(segs), nil
}

// MaxLSN returns the highest LSN the archive holds (0 when empty).
func (a *Archive) MaxLSN() (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	high, _, err := a.maxLSNLocked()
	return high, err
}

// readSegment loads and verifies one segment's records.
func readSegment(path string) ([]WALRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: archive read: %w", err)
	}
	records, _, _, paylen, paycrc, err := readSegHeader(raw)
	if err != nil {
		return nil, fmt.Errorf("storage: archive read %s: %w", path, err)
	}
	if int64(len(raw)) != int64(segHeaderSize)+int64(paylen) {
		return nil, fmt.Errorf("storage: archive read %s: %w: size %d, header says %d",
			path, ErrArchiveCorrupt, len(raw), segHeaderSize+int(paylen))
	}
	payload := raw[segHeaderSize:]
	if crc32.Checksum(payload, castagnoli) != paycrc {
		return nil, fmt.Errorf("storage: archive read %s: %w: payload checksum mismatch", path, ErrArchiveCorrupt)
	}
	recs, _, dmg := scanWALBytes(payload)
	if dmg || len(recs) != records {
		return nil, fmt.Errorf("storage: archive read %s: %w: %d records decoded, header says %d",
			path, ErrArchiveCorrupt, len(recs), records)
	}
	return recs, nil
}

// Replay streams every archived record with from ≤ LSN ≤ to (to = 0
// means no upper bound) to fn, in LSN order. Corrupt segments inside
// the requested range are an error (wrapping ErrArchiveCorrupt, counted
// in archive_corrupt_segments_total); a hole in the LSN chain before
// the range is satisfied is ErrArchiveGap. Segments entirely outside
// the range are not even read.
func (a *Archive) Replay(from, to uint64, fn func(WALRecord) error) error {
	a.mu.Lock()
	segs, damaged, err := a.segmentsLocked()
	a.mu.Unlock()
	if err != nil {
		return err
	}
	// A damaged header inside the requested range is a chain break.
	var prev uint64
	for _, s := range segs {
		if (to > 0 && s.First > to) || s.Last < from {
			if s.Last < from {
				prev = s.Last
			}
			continue
		}
		if prev > 0 && s.First > prev+1 {
			return fmt.Errorf("storage: archive replay: %w: %d..%d missing", ErrArchiveGap, prev+1, s.First-1)
		}
		recs, err := readSegment(s.Path)
		if err != nil {
			if errors.Is(err, ErrArchiveCorrupt) {
				telArchiveCorrupt.Inc()
			}
			return err
		}
		for _, r := range recs {
			if r.LSN < from || (to > 0 && r.LSN > to) {
				continue
			}
			if err := fn(r); err != nil {
				return err
			}
		}
		prev = s.Last
	}
	if len(damaged) > 0 && (to == 0 || prev < to) {
		// The chain may continue inside a segment we cannot read.
		return fmt.Errorf("storage: archive replay: %w: %d damaged segment(s): %s",
			ErrArchiveCorrupt, len(damaged), strings.Join(damaged, ", "))
	}
	return nil
}

// Prune deletes segments whose entire range is below keepFrom — the
// retention policy. Callers tie keepFrom to the backup chain: pruning
// to the latest backup's StartLSN keeps exactly the history needed to
// restore from that backup to any later point.
func (a *Archive) Prune(keepFrom uint64) (removed int, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	segs, _, err := a.segmentsLocked()
	if err != nil {
		return 0, err
	}
	for _, s := range segs {
		if s.Last >= keepFrom {
			continue
		}
		if err := os.Remove(s.Path); err != nil {
			return removed, fmt.Errorf("storage: archive prune: %w", err)
		}
		removed++
		telArchivePruned.Inc()
	}
	if removed > 0 {
		if err := syncDir(a.dir); err != nil {
			return removed, fmt.Errorf("storage: archive prune: %w", err)
		}
	}
	return removed, nil
}

// syncDir fsyncs a directory so a rename or unlink inside it is
// durable before the caller proceeds.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
