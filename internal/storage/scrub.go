package storage

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// Background integrity scrubber.
//
// A Scrubber walks the page file's cold pages on a configurable IO
// budget, verifying each page's CRC32C+LSN header without pulling it
// through the buffer pool (so the scan neither evicts hot pages nor
// hides disk rot behind the cache). Corrupt pages are healed in place
// from the latest committed WAL image — live log first, then the
// archive chain — and pages with no surviving image are reported as
// unhealed: the operator's cue to Repair or restore from backup, and
// gomd's /healthz degradation signal.
//
// Scrubbing is safe against concurrent writers: reads and heals go
// through the FileDisk latch, and HealPage re-verifies the corruption
// under that latch so a heal from an older image can never clobber a
// page a writer just rewrote.

// ScrubConfig tunes a Scrubber.
type ScrubConfig struct {
	// Interval is the pause between passes when running via Start.
	// Zero or negative means Start runs a single pass and stops.
	Interval time.Duration

	// PagesPerSecond caps the scan's IO rate. Zero or negative means
	// unthrottled.
	PagesPerSecond int

	// OnCorrupt, if set, is called for every corrupt page found, with
	// healed reporting whether an archived image repaired it in place.
	OnCorrupt func(id PageID, healed bool)
}

// ScrubResult summarizes one scrub pass.
type ScrubResult struct {
	Checked  int      // pages whose checksum was verified
	Found    []PageID // pages that failed verification this pass
	Healed   []PageID // subset of Found repaired from a logged image
	Unhealed []PageID // all currently known-bad pages (across passes)
}

// Scrubber periodically verifies every stored page of a FileDisk.
type Scrubber struct {
	fd *FileDisk
	w  *WAL // heal source (live log + attached archive); may be nil
	cfg ScrubConfig

	mu       sync.Mutex
	unhealed map[PageID]bool
	passes   uint64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewScrubber builds a scrubber over fd, healing from w's live records
// and its attached archive (w may be nil: corruption is then only
// found and reported, never healed).
func NewScrubber(fd *FileDisk, w *WAL, cfg ScrubConfig) *Scrubber {
	return &Scrubber{
		fd:       fd,
		w:        w,
		cfg:      cfg,
		unhealed: map[PageID]bool{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// RunOnce performs one full pass over the file. It is safe to call
// concurrently with queries and maintenance on the same disk.
func (s *Scrubber) RunOnce() (*ScrubResult, error) {
	return s.runPass(nil)
}

func (s *Scrubber) runPass(cancel <-chan struct{}) (*ScrubResult, error) {
	res := &ScrubResult{}
	var perPage time.Duration
	if s.cfg.PagesPerSecond > 0 {
		perPage = time.Second / time.Duration(s.cfg.PagesPerSecond)
	}
	maxID := s.fd.MaxPageID()
	for id := PageID(1); id <= maxID; id++ {
		if cancel != nil {
			select {
			case <-cancel:
				return res, nil
			default:
			}
		}
		_, err := s.fd.PageLSN(id)
		res.Checked++
		telScrubChecked.Inc()
		switch {
		case err == nil:
			s.mu.Lock()
			delete(s.unhealed, id) // a writer fixed it since the last pass
			s.mu.Unlock()
		case errors.Is(err, ErrCorruptPage):
			res.Found = append(res.Found, id)
			telScrubFound.Inc()
			healed, herr := s.heal(id)
			if herr != nil {
				return res, herr
			}
			s.mu.Lock()
			if healed {
				res.Healed = append(res.Healed, id)
				delete(s.unhealed, id)
				telScrubHealed.Inc()
			} else {
				s.unhealed[id] = true
			}
			s.mu.Unlock()
			if s.cfg.OnCorrupt != nil {
				s.cfg.OnCorrupt(id, healed)
			}
		default:
			return res, err
		}
		if perPage > 0 {
			time.Sleep(perPage)
		}
	}
	s.mu.Lock()
	s.passes++
	for id := range s.unhealed {
		res.Unhealed = append(res.Unhealed, id)
	}
	telScrubUnhealed.Set(float64(len(s.unhealed)))
	s.mu.Unlock()
	sort.Slice(res.Unhealed, func(i, j int) bool { return res.Unhealed[i] < res.Unhealed[j] })
	telScrubPasses.Inc()
	return res, nil
}

// heal looks for the latest committed image of id in the live WAL and
// the archive, and applies the newest one found. The apply re-checks
// the corruption under the disk latch (see FileDisk.HealPage).
func (s *Scrubber) heal(id PageID) (bool, error) {
	if s.w == nil {
		return false, nil
	}
	var (
		best    WALRecord
		haveImg bool
	)
	consider := func(recs []WALRecord) {
		committed := map[uint64]bool{}
		for _, r := range recs {
			if r.Kind == RecCommit {
				committed[r.Txn] = true
			}
		}
		for _, r := range recs {
			if r.Kind == RecPageImage && r.Page == id && committed[r.Txn] {
				if !haveImg || r.LSN > best.LSN {
					best, haveImg = r, true
				}
			}
		}
	}
	// Archive first (older history), then the live log — newest LSN wins
	// regardless of order. A damaged or gapped archive degrades the heal
	// (whatever replayed before the damage is still considered), it does
	// not fail the scrub.
	if arch := s.w.Archive(); arch != nil {
		var all []WALRecord
		err := arch.Replay(0, ^uint64(0), func(r WALRecord) error {
			all = append(all, r)
			return nil
		})
		if err != nil && !errors.Is(err, ErrArchiveCorrupt) && !errors.Is(err, ErrArchiveGap) {
			return false, err
		}
		consider(all)
	}
	recs, _, err := s.w.Records()
	if err != nil {
		return false, err
	}
	consider(recs)
	if !haveImg {
		return false, nil
	}
	return s.fd.HealPage(id, best.Data, best.LSN)
}

// Start launches the background loop: one pass now, then one every
// cfg.Interval. Stop terminates it. Start is idempotent.
func (s *Scrubber) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			for {
				if _, err := s.runPass(s.stop); err != nil {
					// Scrubbing is advisory: an IO error ends the pass,
					// not the process. The next tick retries.
					_ = err
				}
				if s.cfg.Interval <= 0 {
					return
				}
				select {
				case <-s.stop:
					return
				case <-time.After(s.cfg.Interval):
				}
			}
		}()
	})
}

// Stop halts the background loop and waits for it to exit. Calling
// Stop without Start is safe.
func (s *Scrubber) Stop() {
	s.startOnce.Do(func() { close(s.done) }) // never started: mark done
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Unhealed returns the pages currently known corrupt with no logged
// image to heal from, sorted.
func (s *Scrubber) Unhealed() []PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PageID, 0, len(s.unhealed))
	for id := range s.unhealed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Passes returns how many full passes have completed.
func (s *Scrubber) Passes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.passes
}
