package storage

import (
	"container/list"
	"fmt"
)

// ReplacementPolicy selects the buffer pool's victim strategy.
type ReplacementPolicy int

// Available replacement policies.
const (
	LRU ReplacementPolicy = iota
	FIFO
	Clock
)

// String names the policy.
func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Clock:
		return "clock"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// BufferStats counts buffer-pool activity. LogicalAccesses is the
// paper's cost unit when the model assumes no buffering; Misses is the
// physical page-fetch count under the configured pool size.
type BufferStats struct {
	LogicalAccesses uint64
	Hits            uint64
	Misses          uint64
	Evictions       uint64
	WriteBacks      uint64
}

type frame struct {
	id      PageID
	data    []byte
	pins    int
	dirty   bool
	refBit  bool          // Clock
	lruElem *list.Element // LRU / FIFO queue element
}

// Frame is a pinned page in the buffer pool. Callers must Unpin it when
// done and MarkDirty after mutating Data.
type Frame struct {
	pool *BufferPool
	f    *frame
}

// ID returns the framed page id.
func (fr *Frame) ID() PageID { return fr.f.id }

// Data returns the page bytes; valid while the frame is pinned.
func (fr *Frame) Data() []byte { return fr.f.data }

// MarkDirty records that the page must be written back on eviction or
// flush.
func (fr *Frame) MarkDirty() { fr.f.dirty = true }

// Unpin releases the caller's pin.
func (fr *Frame) Unpin() { fr.pool.unpin(fr.f) }

// BufferPool caches disk pages with pin/unpin semantics and a pluggable
// replacement policy. A capacity of 0 means unbounded (every page stays
// resident; physical reads then count each page once).
type BufferPool struct {
	disk     *Disk
	capacity int
	policy   ReplacementPolicy
	frames   map[PageID]*frame
	queue    *list.List // LRU order (front = coldest) or FIFO arrival order
	clock    []*frame   // Clock policy ring
	hand     int
	stats    BufferStats
}

// NewBufferPool creates a pool over disk with the given frame capacity
// and policy.
func NewBufferPool(disk *Disk, capacity int, policy ReplacementPolicy) *BufferPool {
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		policy:   policy,
		frames:   make(map[PageID]*frame),
		queue:    list.New(),
	}
}

// Disk returns the underlying disk.
func (b *BufferPool) Disk() *Disk { return b.disk }

// Stats returns a copy of the counters.
func (b *BufferPool) Stats() BufferStats { return b.stats }

// ResetStats zeroes the counters (resident pages stay resident).
func (b *BufferPool) ResetStats() { b.stats = BufferStats{} }

// Resident returns the number of buffered pages.
func (b *BufferPool) Resident() int { return len(b.frames) }

// Get pins the page into the pool, fetching it from disk on a miss.
func (b *BufferPool) Get(id PageID) (*Frame, error) {
	b.stats.LogicalAccesses++
	if f, ok := b.frames[id]; ok {
		b.stats.Hits++
		f.pins++
		f.refBit = true
		if b.policy == LRU && f.lruElem != nil {
			b.queue.MoveToBack(f.lruElem)
		}
		return &Frame{pool: b, f: f}, nil
	}
	b.stats.Misses++
	if b.capacity > 0 && len(b.frames) >= b.capacity {
		if err := b.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, data: make([]byte, b.disk.PageSize()), pins: 1, refBit: true}
	if err := b.disk.Read(id, f.data); err != nil {
		return nil, err
	}
	b.frames[id] = f
	switch b.policy {
	case LRU, FIFO:
		f.lruElem = b.queue.PushBack(f)
	case Clock:
		b.clock = append(b.clock, f)
	}
	return &Frame{pool: b, f: f}, nil
}

// GetNew allocates a fresh page on disk and pins it without a read. The
// initial fetch is still one logical access (the page must be formatted).
func (b *BufferPool) GetNew() (*Frame, error) {
	id := b.disk.Allocate()
	b.stats.LogicalAccesses++
	b.stats.Misses++
	if b.capacity > 0 && len(b.frames) >= b.capacity {
		if err := b.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, data: make([]byte, b.disk.PageSize()), pins: 1, dirty: true, refBit: true}
	b.frames[id] = f
	switch b.policy {
	case LRU, FIFO:
		f.lruElem = b.queue.PushBack(f)
	case Clock:
		b.clock = append(b.clock, f)
	}
	return &Frame{pool: b, f: f}, nil
}

func (b *BufferPool) unpin(f *frame) {
	if f.pins > 0 {
		f.pins--
	}
}

func (b *BufferPool) evictOne() error {
	victim, err := b.pickVictim()
	if err != nil {
		return err
	}
	if victim.dirty {
		if err := b.disk.Write(victim.id, victim.data); err != nil {
			return err
		}
		b.stats.WriteBacks++
	}
	b.dropFrame(victim)
	b.stats.Evictions++
	return nil
}

func (b *BufferPool) pickVictim() (*frame, error) {
	switch b.policy {
	case LRU, FIFO:
		for e := b.queue.Front(); e != nil; e = e.Next() {
			f := e.Value.(*frame)
			if f.pins == 0 {
				return f, nil
			}
		}
	case Clock:
		// Two sweeps: clear reference bits on the first pass.
		for sweep := 0; sweep < 2*len(b.clock); sweep++ {
			if len(b.clock) == 0 {
				break
			}
			f := b.clock[b.hand%len(b.clock)]
			b.hand = (b.hand + 1) % len(b.clock)
			if f.pins > 0 {
				continue
			}
			if f.refBit {
				f.refBit = false
				continue
			}
			return f, nil
		}
	}
	return nil, fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", len(b.frames))
}

func (b *BufferPool) dropFrame(f *frame) {
	delete(b.frames, f.id)
	if f.lruElem != nil {
		b.queue.Remove(f.lruElem)
		f.lruElem = nil
	}
	for i, cf := range b.clock {
		if cf == f {
			b.clock = append(b.clock[:i], b.clock[i+1:]...)
			if b.hand > i {
				b.hand--
			}
			break
		}
	}
}

// Discard drops a page from the pool without writing it back — used
// when the page is being freed. Discarding a pinned page is an error;
// a non-resident page is a no-op.
func (b *BufferPool) Discard(id PageID) error {
	f, ok := b.frames[id]
	if !ok {
		return nil
	}
	if f.pins > 0 {
		return fmt.Errorf("storage: Discard(%v): page pinned", id)
	}
	b.dropFrame(f)
	return nil
}

// FlushAll writes every dirty resident page back to disk; pages remain
// resident.
func (b *BufferPool) FlushAll() error {
	for _, f := range b.frames {
		if !f.dirty {
			continue
		}
		if err := b.disk.Write(f.id, f.data); err != nil {
			return err
		}
		f.dirty = false
		b.stats.WriteBacks++
	}
	return nil
}

// DropClean empties the pool after flushing, simulating a cold cache for
// a fresh measurement run.
func (b *BufferPool) DropClean() error {
	if err := b.FlushAll(); err != nil {
		return err
	}
	for _, f := range b.frames {
		if f.pins > 0 {
			return fmt.Errorf("storage: DropClean: page %v still pinned", f.id)
		}
	}
	b.frames = make(map[PageID]*frame)
	b.queue.Init()
	b.clock = nil
	b.hand = 0
	return nil
}
