package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ReplacementPolicy selects the buffer pool's victim strategy.
type ReplacementPolicy int

// Available replacement policies.
const (
	LRU ReplacementPolicy = iota
	FIFO
	Clock
)

// String names the policy.
func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Clock:
		return "clock"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// BufferStats counts buffer-pool activity. LogicalAccesses is the
// paper's cost unit when the model assumes no buffering; Misses is the
// physical page-fetch count under the configured pool size. Pins counts
// every successful pin (Get and GetNew). WriteBackErrors counts dirty
// write-backs the device rejected — the frame stays resident and dirty,
// so no data is lost, but the error is surfaced to the caller.
type BufferStats struct {
	LogicalAccesses uint64
	Hits            uint64
	Misses          uint64
	Evictions       uint64
	WriteBacks      uint64
	WriteBackErrors uint64
	Pins            uint64
}

type frame struct {
	id      PageID
	data    []byte
	pins    int
	dirty   bool
	refBit  bool          // Clock
	lruElem *list.Element // LRU / FIFO queue element
}

// Frame is a pinned page in the buffer pool. Callers must Unpin it when
// done and MarkDirty after mutating Data.
//
// Pinned frames may be shared by concurrent readers; the page bytes
// themselves are not synchronized by the pool, so writers to Data must
// hold a higher-level lock (in this repository: the owning partition's
// or segment's write lock) that excludes readers of the same page.
type Frame struct {
	pool *BufferPool
	f    *frame
}

// ID returns the framed page id.
func (fr *Frame) ID() PageID { return fr.f.id }

// Data returns the page bytes; valid while the frame is pinned.
func (fr *Frame) Data() []byte { return fr.f.data }

// MarkDirty records that the page must be written back on eviction or
// flush. Safe for concurrent use.
func (fr *Frame) MarkDirty() {
	fr.pool.mu.Lock()
	fr.f.dirty = true
	fr.pool.mu.Unlock()
}

// Unpin releases the caller's pin. Safe for concurrent use.
func (fr *Frame) Unpin() { fr.pool.unpin(fr.f) }

// BufferPool caches disk pages with pin/unpin semantics and a pluggable
// replacement policy. A capacity of 0 means unbounded (every page stays
// resident; physical reads then count each page once).
//
// A BufferPool is safe for concurrent use: the frame table, replacement
// structures and pin counts are guarded by one mutex, and the activity
// counters are atomics, so Stats never blocks page traffic. The
// measurement helpers ResetStats and DropClean change global state and
// are meant for single-threaded experiment harnesses, not for use while
// other goroutines hold pins.
type BufferPool struct {
	mu       sync.Mutex
	dev      Device
	capacity int
	policy   ReplacementPolicy
	frames   map[PageID]*frame
	queue    *list.List // LRU order (front = coldest) or FIFO arrival order
	clock    []*frame   // Clock policy ring
	hand     int
	undo     *UndoTxn // active undo transaction, nil outside maintenance

	nLogical       atomic.Uint64
	nHits          atomic.Uint64
	nMisses        atomic.Uint64
	nEvictions     atomic.Uint64
	nWriteBacks    atomic.Uint64
	nWriteBackErrs atomic.Uint64
	nPins          atomic.Uint64
}

// NewBufferPool creates a pool over a page device with the given frame
// capacity and policy.
func NewBufferPool(dev Device, capacity int, policy ReplacementPolicy) *BufferPool {
	return &BufferPool{
		dev:      dev,
		capacity: capacity,
		policy:   policy,
		frames:   make(map[PageID]*frame),
		queue:    list.New(),
	}
}

// Disk returns the underlying page device.
func (b *BufferPool) Disk() Device { return b.dev }

// Stats returns a snapshot of the counters. Safe for concurrent use;
// the snapshot is internally consistent only when the pool is quiescent.
func (b *BufferPool) Stats() BufferStats {
	return BufferStats{
		LogicalAccesses: b.nLogical.Load(),
		Hits:            b.nHits.Load(),
		Misses:          b.nMisses.Load(),
		Evictions:       b.nEvictions.Load(),
		WriteBacks:      b.nWriteBacks.Load(),
		WriteBackErrors: b.nWriteBackErrs.Load(),
		Pins:            b.nPins.Load(),
	}
}

// ResetStats zeroes the counters (resident pages stay resident).
func (b *BufferPool) ResetStats() {
	b.nLogical.Store(0)
	b.nHits.Store(0)
	b.nMisses.Store(0)
	b.nEvictions.Store(0)
	b.nWriteBacks.Store(0)
	b.nWriteBackErrs.Store(0)
	b.nPins.Store(0)
}

// Resident returns the number of buffered pages.
func (b *BufferPool) Resident() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frames)
}

// Get pins the page into the pool, fetching it from disk on a miss.
func (b *BufferPool) Get(id PageID) (*Frame, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nLogical.Add(1)
	if f, ok := b.frames[id]; ok {
		b.nHits.Add(1)
		telPoolHits.Inc()
		b.nPins.Add(1)
		telPoolPins.Inc()
		f.pins++
		f.refBit = true
		if b.policy == LRU && f.lruElem != nil {
			b.queue.MoveToBack(f.lruElem)
		}
		b.captureLocked(f)
		return &Frame{pool: b, f: f}, nil
	}
	b.nMisses.Add(1)
	telPoolMisses.Inc()
	if b.capacity > 0 && len(b.frames) >= b.capacity {
		if err := b.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, data: make([]byte, b.dev.PageSize()), pins: 1, refBit: true}
	readStart := time.Now()
	if err := b.dev.Read(id, f.data); err != nil {
		return nil, err
	}
	telPoolReadSeconds.Observe(time.Since(readStart).Seconds())
	b.captureLocked(f)
	b.nPins.Add(1)
	telPoolPins.Inc()
	b.frames[id] = f
	switch b.policy {
	case LRU, FIFO:
		f.lruElem = b.queue.PushBack(f)
	case Clock:
		b.clock = append(b.clock, f)
	}
	return &Frame{pool: b, f: f}, nil
}

// GetNew allocates a fresh page on disk and pins it without a read. The
// initial fetch is still one logical access (the page must be formatted).
func (b *BufferPool) GetNew() (*Frame, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.dev.Allocate()
	b.nLogical.Add(1)
	b.nMisses.Add(1)
	telPoolMisses.Inc()
	if b.capacity > 0 && len(b.frames) >= b.capacity {
		if err := b.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, data: make([]byte, b.dev.PageSize()), pins: 1, dirty: true, refBit: true}
	if b.undo != nil {
		b.undo.fresh[id] = true
	}
	b.nPins.Add(1)
	telPoolPins.Inc()
	b.frames[id] = f
	switch b.policy {
	case LRU, FIFO:
		f.lruElem = b.queue.PushBack(f)
	case Clock:
		b.clock = append(b.clock, f)
	}
	return &Frame{pool: b, f: f}, nil
}

func (b *BufferPool) unpin(f *frame) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if f.pins > 0 {
		f.pins--
	}
}

// evictOne must be called with b.mu held.
func (b *BufferPool) evictOne() error {
	victim, err := b.pickVictim()
	if err != nil {
		return err
	}
	if victim.dirty {
		if err := b.dev.Write(victim.id, victim.data); err != nil {
			// The victim stays resident and dirty — nothing is lost, the
			// caller sees the device error and the counter records it.
			b.nWriteBackErrs.Add(1)
			telPoolWriteBackErrs.Inc()
			return fmt.Errorf("storage: write-back of %v failed: %w", victim.id, err)
		}
		b.nWriteBacks.Add(1)
		telPoolWriteBacks.Inc()
	}
	b.dropFrame(victim)
	b.nEvictions.Add(1)
	telPoolEvictions.Inc()
	return nil
}

// pickVictim must be called with b.mu held.
func (b *BufferPool) pickVictim() (*frame, error) {
	switch b.policy {
	case LRU, FIFO:
		for e := b.queue.Front(); e != nil; e = e.Next() {
			f := e.Value.(*frame)
			if f.pins == 0 {
				return f, nil
			}
		}
	case Clock:
		// Two sweeps: clear reference bits on the first pass.
		for sweep := 0; sweep < 2*len(b.clock); sweep++ {
			if len(b.clock) == 0 {
				break
			}
			f := b.clock[b.hand%len(b.clock)]
			b.hand = (b.hand + 1) % len(b.clock)
			if f.pins > 0 {
				continue
			}
			if f.refBit {
				f.refBit = false
				continue
			}
			return f, nil
		}
	}
	return nil, fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", len(b.frames))
}

// dropFrame must be called with b.mu held.
func (b *BufferPool) dropFrame(f *frame) {
	delete(b.frames, f.id)
	if f.lruElem != nil {
		b.queue.Remove(f.lruElem)
		f.lruElem = nil
	}
	for i, cf := range b.clock {
		if cf == f {
			b.clock = append(b.clock[:i], b.clock[i+1:]...)
			if b.hand > i {
				b.hand--
			}
			break
		}
	}
}

// Discard drops a page from the pool without writing it back — used
// when the page is being freed. Discarding a pinned page is an error;
// a non-resident page is a no-op.
func (b *BufferPool) Discard(id PageID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.frames[id]
	if !ok {
		return nil
	}
	if f.pins > 0 {
		return fmt.Errorf("storage: Discard(%v): page pinned", id)
	}
	b.dropFrame(f)
	return nil
}

// FlushAll writes every dirty resident page back to disk; pages remain
// resident.
func (b *BufferPool) FlushAll() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushAllLocked()
}

// flushAllLocked must be called with b.mu held. Every dirty frame is
// attempted: a failed write-back leaves its frame dirty (so the data is
// retried on the next flush or eviction) and does not stop the
// remaining frames from flushing; all failures are joined and counted.
func (b *BufferPool) flushAllLocked() error {
	var errs []error
	for _, f := range b.frames {
		if !f.dirty {
			continue
		}
		if err := b.dev.Write(f.id, f.data); err != nil {
			b.nWriteBackErrs.Add(1)
			telPoolWriteBackErrs.Inc()
			errs = append(errs, fmt.Errorf("storage: flush of %v failed: %w", f.id, err))
			continue
		}
		f.dirty = false
		b.nWriteBacks.Add(1)
		telPoolWriteBacks.Inc()
	}
	return errors.Join(errs...)
}

// DropClean empties the pool after flushing, simulating a cold cache for
// a fresh measurement run.
func (b *BufferPool) DropClean() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.flushAllLocked(); err != nil {
		return err
	}
	for _, f := range b.frames {
		if f.pins > 0 {
			return fmt.Errorf("storage: DropClean: page %v still pinned", f.id)
		}
	}
	b.frames = make(map[PageID]*frame)
	b.queue.Init()
	b.clock = nil
	b.hand = 0
	return nil
}
