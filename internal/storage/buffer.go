package storage

import (
	"container/list"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ReplacementPolicy selects the buffer pool's victim strategy.
type ReplacementPolicy int

// Available replacement policies.
const (
	LRU ReplacementPolicy = iota
	FIFO
	Clock
)

// String names the policy.
func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Clock:
		return "clock"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// BufferStats counts buffer-pool activity. LogicalAccesses is the
// paper's cost unit when the model assumes no buffering; Misses is the
// physical page-fetch count under the configured pool size. Pins counts
// every successful pin (Get and GetNew). WriteBackErrors counts dirty
// write-backs the device rejected — the frame stays resident and dirty,
// so no data is lost, but the error is surfaced to the caller.
type BufferStats struct {
	LogicalAccesses uint64
	Hits            uint64
	Misses          uint64
	Evictions       uint64
	WriteBacks      uint64
	WriteBackErrors uint64
	Pins            uint64
}

// add accumulates other into s (used to aggregate per-shard stats).
func (s *BufferStats) add(o BufferStats) {
	s.LogicalAccesses += o.LogicalAccesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.WriteBacks += o.WriteBacks
	s.WriteBackErrors += o.WriteBackErrors
	s.Pins += o.Pins
}

type frame struct {
	id      PageID
	data    []byte
	pins    int
	dirty   bool
	lsn     uint64        // LSN of the commit covering the dirty bytes
	refBit  bool          // Clock
	lruElem *list.Element // LRU / FIFO queue element
}

// Frame is a pinned page in the buffer pool. Callers must Unpin it when
// done and MarkDirty after mutating Data.
//
// Pinned frames may be shared by concurrent readers; the page bytes
// themselves are not synchronized by the pool, so writers to Data must
// hold a higher-level lock (in this repository: the owning partition's
// or segment's write lock) that excludes readers of the same page.
type Frame struct {
	pool *BufferPool
	f    *frame
}

// ID returns the framed page id.
func (fr *Frame) ID() PageID { return fr.f.id }

// Data returns the page bytes; valid while the frame is pinned.
func (fr *Frame) Data() []byte { return fr.f.data }

// MarkDirty records that the page must be written back on eviction or
// flush. Safe for concurrent use.
func (fr *Frame) MarkDirty() {
	s := fr.pool.shardOf(fr.f.id)
	s.mu.Lock()
	fr.f.dirty = true
	s.mu.Unlock()
}

// Unpin releases the caller's pin. Safe for concurrent use.
func (fr *Frame) Unpin() {
	s := fr.pool.shardOf(fr.f.id)
	s.mu.Lock()
	if fr.f.pins > 0 {
		fr.f.pins--
	}
	s.mu.Unlock()
}

// shard is one lock stripe of the pool: its own frame table, replacement
// structures and capacity slice, guarded by one mutex. Pages are
// distributed over shards by a page-id hash, so pins of unrelated pages
// — parallel query workers descending different subtrees, a concurrent
// index build — proceed without contending on a single pool mutex.
type shard struct {
	pool     *BufferPool
	mu       sync.Mutex
	capacity int // frames this shard may hold; 0 = unbounded
	frames   map[PageID]*frame
	queue    *list.List // LRU order (front = coldest) or FIFO arrival order
	clock    []*frame   // Clock policy ring
	hand     int
	stats    BufferStats // per-shard counters, guarded by mu
}

// BufferPool caches disk pages with pin/unpin semantics and a pluggable
// replacement policy, striped over N independently locked shards (page-
// id hash). A capacity of 0 means unbounded (every page stays resident;
// physical reads then count each page once); a positive capacity is
// divided across the shards, each running its own eviction list, so
// global replacement order is approximate — per-shard exact.
//
// A BufferPool is safe for concurrent use: each shard's frame table,
// replacement structures and pin counts are guarded by that shard's
// mutex, and the pool-wide activity counters are atomics, so Stats never
// blocks page traffic. The measurement helpers ResetStats and DropClean
// change global state and are meant for single-threaded experiment
// harnesses, not for use while other goroutines hold pins.
type BufferPool struct {
	dev      Device
	capacity int
	policy   ReplacementPolicy
	shards   []*shard
	shift    uint // 64 - log2(len(shards)), for the Fibonacci hash

	undo atomic.Pointer[UndoTxn] // active undo transaction, nil outside maintenance
	wal  atomic.Pointer[WAL]     // write-ahead log; nil for purely in-memory pools

	nLogical       atomic.Uint64
	nHits          atomic.Uint64
	nMisses        atomic.Uint64
	nEvictions     atomic.Uint64
	nWriteBacks    atomic.Uint64
	nWriteBackErrs atomic.Uint64
	nPins          atomic.Uint64
}

// maxShards caps the automatic stripe count; minShardFrames is the
// smallest per-shard capacity automatic sharding will accept — below
// it, striping a bounded pool would distort eviction behaviour more
// than the saved contention is worth, so small pools stay single-shard
// (and keep the exact replacement semantics the eviction tests assert).
const (
	maxShards      = 16
	minShardFrames = 8
)

// autoShards picks the stripe count for NewBufferPool: the next power of
// two ≥ GOMAXPROCS, capped at maxShards, and reduced until every shard
// of a bounded pool holds at least minShardFrames frames.
func autoShards(capacity int) int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	n = 1 << bits.Len(uint(n-1)) // next power of two (1 → 1)
	if n > maxShards {
		n = maxShards
	}
	if capacity > 0 {
		for n > 1 && capacity/n < minShardFrames {
			n >>= 1
		}
	}
	return n
}

// NewBufferPool creates a pool over a page device with the given frame
// capacity and policy. The shard count is chosen automatically (one
// stripe per core up to 16, single-shard for small bounded pools); use
// NewBufferPoolShards to fix it.
func NewBufferPool(dev Device, capacity int, policy ReplacementPolicy) *BufferPool {
	return NewBufferPoolShards(dev, capacity, policy, 0)
}

// NewBufferPoolShards creates a pool with an explicit shard count
// (rounded up to a power of two, capped at the capacity when bounded;
// ≤ 0 selects automatically).
func NewBufferPoolShards(dev Device, capacity int, policy ReplacementPolicy, shards int) *BufferPool {
	if shards <= 0 {
		shards = autoShards(capacity)
	}
	if capacity > 0 && shards > capacity {
		shards = capacity
	}
	shards = 1 << bits.Len(uint(shards-1)) // power of two for the hash
	b := &BufferPool{
		dev:      dev,
		capacity: capacity,
		policy:   policy,
		shards:   make([]*shard, shards),
		shift:    uint(64 - bits.TrailingZeros(uint(shards))),
	}
	if shards == 1 {
		b.shift = 64
	}
	base, rem := 0, 0
	if capacity > 0 {
		base, rem = capacity/shards, capacity%shards
	}
	for i := range b.shards {
		cap := 0
		if capacity > 0 {
			cap = base
			if i < rem {
				cap++
			}
		}
		b.shards[i] = &shard{
			pool:     b,
			capacity: cap,
			frames:   make(map[PageID]*frame),
			queue:    list.New(),
		}
	}
	return b
}

// shardOf maps a page id to its stripe by Fibonacci hashing — page ids
// are sequential, so plain modulo would stripe adjacent pages of one
// tree level perfectly but correlate with allocation patterns; the
// multiplicative hash spreads any id distribution evenly.
func (b *BufferPool) shardOf(id PageID) *shard {
	if len(b.shards) == 1 {
		return b.shards[0]
	}
	return b.shards[(uint64(id)*0x9E3779B97F4A7C15)>>b.shift]
}

// Disk returns the underlying page device.
func (b *BufferPool) Disk() Device { return b.dev }

// AttachWAL couples the pool to a write-ahead log. From then on the
// pool is no-steal (pages dirtied by the active undo transaction are
// never flushed or evicted before the transaction commits) and every
// write-back first syncs the log up to the frame's LSN — the WAL rule.
func (b *BufferPool) AttachWAL(w *WAL) { b.wal.Store(w) }

// WAL returns the attached log, nil when the pool is purely in-memory.
func (b *BufferPool) WAL() *WAL { return b.wal.Load() }

// heldByTxn reports whether a dirty frame belongs to the active undo
// transaction of a WAL-backed pool — such frames hold uncommitted
// bytes and must not reach the device (no-steal), or a crash would
// leave effects of a discarded transaction in the data file.
func (b *BufferPool) heldByTxn(id PageID) bool {
	if b.wal.Load() == nil {
		return false
	}
	t := b.undo.Load()
	return t != nil && t.touches(id)
}

// writeBack pushes one frame to the device honouring the WAL rule:
// log first (sync up to the frame's commit LSN), data page second,
// stamping the LSN into the stored page header when the device
// supports it. Must be called with the owning shard's mutex held.
func (b *BufferPool) writeBack(f *frame) error {
	if w := b.wal.Load(); w != nil && f.lsn > 0 {
		if err := w.Sync(f.lsn); err != nil {
			return err
		}
	}
	if lw, ok := b.dev.(LSNWriter); ok {
		return lw.WriteLSN(f.id, f.data, f.lsn)
	}
	return b.dev.Write(f.id, f.data)
}

// setLSN stamps a commit LSN onto a resident frame (no-op when the
// page is not resident). Called by UndoTxn.Commit after logging.
func (b *BufferPool) setLSN(id PageID, lsn uint64) {
	s := b.shardOf(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		f.lsn = lsn
	}
	s.mu.Unlock()
}

// NumShards returns the number of lock stripes.
func (b *BufferPool) NumShards() int { return len(b.shards) }

// Stats returns a snapshot of the pool-wide counters. Safe for
// concurrent use; the snapshot is internally consistent only when the
// pool is quiescent.
func (b *BufferPool) Stats() BufferStats {
	return BufferStats{
		LogicalAccesses: b.nLogical.Load(),
		Hits:            b.nHits.Load(),
		Misses:          b.nMisses.Load(),
		Evictions:       b.nEvictions.Load(),
		WriteBacks:      b.nWriteBacks.Load(),
		WriteBackErrors: b.nWriteBackErrs.Load(),
		Pins:            b.nPins.Load(),
	}
}

// ShardStats returns one counter snapshot per shard, in stripe order.
// The per-shard counters sum to Stats() when the pool is quiescent.
func (b *BufferPool) ShardStats() []BufferStats {
	out := make([]BufferStats, len(b.shards))
	for i, s := range b.shards {
		s.mu.Lock()
		out[i] = s.stats
		s.mu.Unlock()
	}
	return out
}

// ResetStats zeroes the counters (resident pages stay resident).
func (b *BufferPool) ResetStats() {
	b.nLogical.Store(0)
	b.nHits.Store(0)
	b.nMisses.Store(0)
	b.nEvictions.Store(0)
	b.nWriteBacks.Store(0)
	b.nWriteBackErrs.Store(0)
	b.nPins.Store(0)
	for _, s := range b.shards {
		s.mu.Lock()
		s.stats = BufferStats{}
		s.mu.Unlock()
	}
}

// Resident returns the number of buffered pages.
func (b *BufferPool) Resident() int {
	n := 0
	for _, s := range b.shards {
		s.mu.Lock()
		n += len(s.frames)
		s.mu.Unlock()
	}
	return n
}

// capture records the page's pre-image into the active undo
// transaction, if any. Called with the owning shard's mutex held,
// before the frame is returned to the caller.
func (b *BufferPool) capture(f *frame) {
	if t := b.undo.Load(); t != nil {
		t.capture(f.id, f.data)
	}
}

// Get pins the page into the pool, fetching it from disk on a miss.
func (b *BufferPool) Get(id PageID) (*Frame, error) {
	s := b.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	b.nLogical.Add(1)
	s.stats.LogicalAccesses++
	if f, ok := s.frames[id]; ok {
		b.nHits.Add(1)
		s.stats.Hits++
		telPoolHits.Inc()
		b.nPins.Add(1)
		s.stats.Pins++
		telPoolPins.Inc()
		f.pins++
		f.refBit = true
		if b.policy == LRU && f.lruElem != nil {
			s.queue.MoveToBack(f.lruElem)
		}
		b.capture(f)
		return &Frame{pool: b, f: f}, nil
	}
	b.nMisses.Add(1)
	s.stats.Misses++
	telPoolMisses.Inc()
	if s.capacity > 0 && len(s.frames) >= s.capacity {
		if err := s.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, data: make([]byte, b.dev.PageSize()), pins: 1, refBit: true}
	readStart := time.Now()
	if err := b.dev.Read(id, f.data); err != nil {
		return nil, err
	}
	telPoolReadSeconds.Observe(time.Since(readStart).Seconds())
	b.capture(f)
	b.nPins.Add(1)
	s.stats.Pins++
	telPoolPins.Inc()
	s.frames[id] = f
	s.admit(f)
	return &Frame{pool: b, f: f}, nil
}

// GetNew allocates a fresh page on disk and pins it without a read. The
// initial fetch is still one logical access (the page must be formatted).
func (b *BufferPool) GetNew() (*Frame, error) {
	id := b.dev.Allocate()
	s := b.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	b.nLogical.Add(1)
	s.stats.LogicalAccesses++
	b.nMisses.Add(1)
	s.stats.Misses++
	telPoolMisses.Inc()
	if s.capacity > 0 && len(s.frames) >= s.capacity {
		if err := s.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, data: make([]byte, b.dev.PageSize()), pins: 1, dirty: true, refBit: true}
	if t := b.undo.Load(); t != nil {
		t.addFresh(id)
	}
	b.nPins.Add(1)
	s.stats.Pins++
	telPoolPins.Inc()
	s.frames[id] = f
	s.admit(f)
	return &Frame{pool: b, f: f}, nil
}

// admit enrolls a new frame in the shard's replacement structure; must
// be called with s.mu held.
func (s *shard) admit(f *frame) {
	switch s.pool.policy {
	case LRU, FIFO:
		f.lruElem = s.queue.PushBack(f)
	case Clock:
		s.clock = append(s.clock, f)
	}
}

// evictOne must be called with s.mu held.
func (s *shard) evictOne() error {
	b := s.pool
	victim, err := s.pickVictim()
	if err != nil {
		return err
	}
	if victim.dirty {
		if err := b.writeBack(victim); err != nil {
			// The victim stays resident and dirty — nothing is lost, the
			// caller sees the device error and the counter records it.
			b.nWriteBackErrs.Add(1)
			s.stats.WriteBackErrors++
			telPoolWriteBackErrs.Inc()
			return fmt.Errorf("storage: write-back of %v failed: %w", victim.id, err)
		}
		b.nWriteBacks.Add(1)
		s.stats.WriteBacks++
		telPoolWriteBacks.Inc()
	}
	s.dropFrame(victim)
	b.nEvictions.Add(1)
	s.stats.Evictions++
	telPoolEvictions.Inc()
	return nil
}

// pickVictim must be called with s.mu held.
func (s *shard) pickVictim() (*frame, error) {
	b := s.pool
	switch b.policy {
	case LRU, FIFO:
		for e := s.queue.Front(); e != nil; e = e.Next() {
			f := e.Value.(*frame)
			if f.pins == 0 && !(f.dirty && b.heldByTxn(f.id)) {
				return f, nil
			}
		}
	case Clock:
		// Two sweeps: clear reference bits on the first pass.
		for sweep := 0; sweep < 2*len(s.clock); sweep++ {
			if len(s.clock) == 0 {
				break
			}
			f := s.clock[s.hand%len(s.clock)]
			s.hand = (s.hand + 1) % len(s.clock)
			if f.pins > 0 || (f.dirty && b.heldByTxn(f.id)) {
				continue
			}
			if f.refBit {
				f.refBit = false
				continue
			}
			return f, nil
		}
	}
	return nil, fmt.Errorf("storage: buffer pool shard exhausted: all %d frames pinned or transaction-held", len(s.frames))
}

// dropFrame must be called with s.mu held.
func (s *shard) dropFrame(f *frame) {
	delete(s.frames, f.id)
	if f.lruElem != nil {
		s.queue.Remove(f.lruElem)
		f.lruElem = nil
	}
	for i, cf := range s.clock {
		if cf == f {
			s.clock = append(s.clock[:i], s.clock[i+1:]...)
			if s.hand > i {
				s.hand--
			}
			break
		}
	}
}

// Discard drops a page from the pool without writing it back — used
// when the page is being freed. Discarding a pinned page is an error;
// a non-resident page is a no-op.
func (b *BufferPool) Discard(id PageID) error {
	s := b.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[id]
	if !ok {
		return nil
	}
	if f.pins > 0 {
		return fmt.Errorf("storage: Discard(%v): page pinned", id)
	}
	s.dropFrame(f)
	return nil
}

// FlushAll writes every dirty resident page back to disk; pages remain
// resident.
func (b *BufferPool) FlushAll() error {
	var errs []error
	for _, s := range b.shards {
		s.mu.Lock()
		err := s.flushLocked()
		s.mu.Unlock()
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// flushLocked must be called with s.mu held. Every dirty frame is
// attempted: a failed write-back leaves its frame dirty (so the data is
// retried on the next flush or eviction) and does not stop the
// remaining frames from flushing; all failures are joined and counted.
func (s *shard) flushLocked() error {
	b := s.pool
	var errs []error
	for _, f := range s.frames {
		if !f.dirty {
			continue
		}
		if b.heldByTxn(f.id) {
			// No-steal: uncommitted transaction-held bytes stay in memory
			// until the transaction's WAL commit covers them.
			continue
		}
		if err := b.writeBack(f); err != nil {
			b.nWriteBackErrs.Add(1)
			s.stats.WriteBackErrors++
			telPoolWriteBackErrs.Inc()
			errs = append(errs, fmt.Errorf("storage: flush of %v failed: %w", f.id, err))
			continue
		}
		f.dirty = false
		b.nWriteBacks.Add(1)
		s.stats.WriteBacks++
		telPoolWriteBacks.Inc()
	}
	return errors.Join(errs...)
}

// DropClean empties the pool after flushing, simulating a cold cache
// for a fresh measurement run. Every shard is attempted; failures
// (write-backs the device rejected, pages still pinned — those shards
// are left intact) are joined rather than stopping at the first, so
// one sick shard does not hide the others' state. Refused while a
// WAL-backed undo transaction is active: its frames may not be
// flushed, and dropping them would lose uncommitted data.
func (b *BufferPool) DropClean() error {
	if b.wal.Load() != nil && b.undo.Load() != nil {
		return fmt.Errorf("storage: DropClean: undo transaction active")
	}
	var errs []error
	for _, s := range b.shards {
		s.mu.Lock()
		if err := s.flushLocked(); err != nil {
			s.mu.Unlock()
			errs = append(errs, err)
			continue
		}
		pinned := false
		for _, f := range s.frames {
			if f.pins > 0 {
				errs = append(errs, fmt.Errorf("storage: DropClean: page %v still pinned", f.id))
				pinned = true
				break
			}
		}
		if pinned {
			s.mu.Unlock()
			continue
		}
		s.frames = make(map[PageID]*frame)
		s.queue.Init()
		s.clock = nil
		s.hand = 0
		s.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Checkpoint makes the current committed state durable and truncates
// the log: flush every dirty frame (WAL-first per frame), sync the
// device (superblock + fsync for a FileDisk), then reset the WAL —
// after which recovery starts from the data file alone. Nothing is
// truncated if any earlier step failed; the joined errors are
// returned and the log keeps its records.
//
// Safe to call with an undo transaction active: its frames are
// skipped (no-steal) and stay covered by the log they will commit to.
func (b *BufferPool) Checkpoint() error {
	var errs []error
	if err := b.FlushAll(); err != nil {
		errs = append(errs, err)
	}
	if s, ok := b.dev.(Syncer); ok {
		if err := s.Sync(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	w := b.wal.Load()
	if w == nil {
		return nil
	}
	// With an active transaction the log still covers its eventual
	// commit; truncating would orphan those images.
	if b.undo.Load() != nil {
		telCheckpoints.Inc()
		return nil
	}
	if err := w.Reset(); err != nil {
		return err
	}
	telCheckpoints.Inc()
	return nil
}
