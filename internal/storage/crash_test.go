package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// crashWorkload runs a fixed, deterministic sequence of undo
// transactions against a WAL-attached pool over a FileDisk in dir —
// each transaction allocates a page and rewrites recent ones, with a
// checkpoint partway through. It returns one committed-state snapshot
// (page id → payload) per transaction whose Commit returned nil; the
// error is whatever stopped the run (nil on a clean run ending in a
// checkpoint and close).
//
// Because the schedule is deterministic, snapshot j describes the
// state after transaction j in every run — a crash run's recovered
// file can be compared against the reference run's snapshots.
func crashWorkload(dir string, cp *Crashpoint) ([]map[PageID][]byte, error) {
	const pageSize = 256
	path := filepath.Join(dir, "pages")
	fd, err := OpenFileDisk(path, pageSize)
	if err != nil {
		return nil, err
	}
	w, err := OpenWAL(path + ".wal")
	if err != nil {
		fd.Close()
		return nil, err
	}
	pool := NewBufferPool(fd, 0, LRU)
	pool.AttachWAL(w)
	if cp != nil {
		fd.SetCrashpoint(cp)
		w.SetCrashpoint(cp)
	}

	mirror := map[PageID][]byte{}
	snapshot := func() map[PageID][]byte {
		s := make(map[PageID][]byte, len(mirror))
		for id, b := range mirror {
			s[id] = append([]byte(nil), b...)
		}
		return s
	}
	var snaps []map[PageID][]byte
	var ids []PageID

	for i := 0; i < 8; i++ {
		txn, err := pool.BeginUndo()
		if err != nil {
			return snaps, err
		}
		abort := func(err error) ([]map[PageID][]byte, error) {
			txn.Rollback()
			return snaps, err
		}
		fr, err := pool.GetNew()
		if err != nil {
			return abort(err)
		}
		id := fr.ID()
		for k := range fr.Data() {
			fr.Data()[k] = byte(i + 1)
		}
		mirror[id] = append([]byte(nil), fr.Data()...)
		fr.MarkDirty()
		fr.Unpin()
		ids = append(ids, id)
		// Rewrite up to two earlier pages so recovery must pick the
		// newest image per page.
		for j := max(0, len(ids)-3); j < len(ids)-1; j++ {
			fr, err := pool.Get(ids[j])
			if err != nil {
				return abort(err)
			}
			fr.Data()[0] = byte(i + 1)
			fr.Data()[1] = byte(j + 1)
			mirror[ids[j]] = append([]byte(nil), fr.Data()...)
			fr.MarkDirty()
			fr.Unpin()
		}
		if err := txn.Commit(); err != nil {
			return abort(err)
		}
		snaps = append(snaps, snapshot())
		if i == 3 {
			if err := pool.Checkpoint(); err != nil {
				return snaps, err
			}
		}
	}
	if err := pool.Checkpoint(); err != nil {
		return snaps, err
	}
	if err := fd.Close(); err != nil {
		return snaps, err
	}
	return snaps, w.Close()
}

// stateMatches reports whether every page in snap reads back from fd
// with exactly the snapshot's bytes.
func stateMatches(fd *FileDisk, snap map[PageID][]byte) bool {
	buf := make([]byte, fd.PageSize())
	for id, want := range snap {
		if err := fd.Read(id, buf); err != nil {
			return false
		}
		for i := range want {
			if buf[i] != want[i] {
				return false
			}
		}
	}
	return true
}

// TestCrashRecoveryAtEveryWritePoint crashes the workload at every
// admitted physical write — clean cut and torn halfway — and asserts
// Recover restores exactly a committed prefix: the state after the last
// transaction whose Commit returned, or the next one (whose commit
// marker may have become durable in the very write that crashed).
func TestCrashRecoveryAtEveryWritePoint(t *testing.T) {
	ref := NewCrashpoint(0, 0) // count-only: measures the write schedule
	refSnaps, err := crashWorkload(t.TempDir(), ref)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	total := ref.Writes()
	if total < 10 {
		t.Fatalf("reference run made only %d writes", total)
	}
	for _, torn := range []float64{0, 0.5, 1} {
		for at := int64(1); at <= total; at++ {
			t.Run(fmt.Sprintf("torn=%v/write=%d", torn, at), func(t *testing.T) {
				dir := t.TempDir()
				cp := NewCrashpoint(at, torn)
				snaps, werr := crashWorkload(dir, cp)
				if !cp.Crashed() {
					t.Fatalf("crashpoint %d did not fire (run err: %v)", at, werr)
				}
				lastOk := len(snaps) - 1

				fd, w, info, err := Recover(filepath.Join(dir, "pages"))
				if err != nil {
					t.Fatalf("Recover: %v", err)
				}
				defer fd.Close()
				defer w.Close()
				if len(info.QuarantinedPages) != 0 {
					t.Fatalf("pages quarantined after redo: %v", info.QuarantinedPages)
				}
				// Every commit that returned nil was durably synced, so the
				// recovered state is at least lastOk; the in-flight commit
				// may additionally have become durable.
				matched := -1
				for j := lastOk; j <= lastOk+1 && j < len(refSnaps); j++ {
					if j >= 0 && stateMatches(fd, refSnaps[j]) {
						matched = j
						break
					}
				}
				if matched == -1 && lastOk == -1 && len(refSnaps) > 0 {
					// Crash before the first commit: an empty state (no
					// pages to check) is trivially consistent.
					matched = 0
					if !stateMatches(fd, map[PageID][]byte{}) {
						matched = -1
					}
				}
				if matched == -1 {
					t.Fatalf("recovered state matches no committed prefix (last ok txn %d, recovery %+v)", lastOk, info)
				}

				// The recovered pair must be immediately usable: run one
				// more committed transaction and read it back.
				pool := NewBufferPool(fd, 0, LRU)
				pool.AttachWAL(w)
				txn, err := pool.BeginUndo()
				if err != nil {
					t.Fatal(err)
				}
				fr, err := pool.GetNew()
				if err != nil {
					t.Fatal(err)
				}
				id := fr.ID()
				fr.Data()[0] = 0xAB
				fr.MarkDirty()
				fr.Unpin()
				if err := txn.Commit(); err != nil {
					t.Fatalf("commit after recovery: %v", err)
				}
				if err := pool.Checkpoint(); err != nil {
					t.Fatalf("checkpoint after recovery: %v", err)
				}
				buf := make([]byte, fd.PageSize())
				if err := fd.Read(id, buf); err != nil || buf[0] != 0xAB {
					t.Fatalf("post-recovery write lost: %v, byte %#x", err, buf[0])
				}
			})
		}
	}
}

// TestRecoverHealsTornDataPage pins the crash on a data-page write
// during checkpoint: the torn page fails its checksum on reopen, and
// Recover heals it from the committed WAL image.
func TestRecoverHealsTornDataPage(t *testing.T) {
	ref := NewCrashpoint(0, 0)
	if _, err := crashWorkload(t.TempDir(), ref); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	healed := false
	for at := int64(1); at <= ref.Writes(); at++ {
		dir := t.TempDir()
		cp := NewCrashpoint(at, 0.5)
		crashWorkload(dir, cp)
		path := filepath.Join(dir, "pages")

		// Does the frozen file hold a corrupt page? (Only some crash
		// points tear a data page; superblock and WAL tears don't.)
		fd0, err := OpenFileDisk(path, 0)
		if err != nil {
			continue
		}
		corrupt := false
		for id := PageID(1); int(id) <= fd0.NumPages(); id++ {
			if _, err := fd0.PageLSN(id); errors.Is(err, ErrCorruptPage) {
				corrupt = true
			}
		}
		fd0.f.Close() // skip Sync: leave the frozen file untouched

		if !corrupt {
			continue
		}
		fd, w, info, err := Recover(path)
		if err != nil {
			t.Fatalf("Recover at write %d: %v", at, err)
		}
		if len(info.QuarantinedPages) != 0 {
			t.Fatalf("write %d: torn page not healed: %+v", at, info)
		}
		for id := PageID(1); int(id) <= fd.NumPages(); id++ {
			if _, err := fd.PageLSN(id); err != nil {
				t.Fatalf("write %d: page %v unreadable after recovery: %v", at, id, err)
			}
		}
		healed = true
		w.Close()
		fd.Close()
	}
	if !healed {
		t.Fatal("no crash point produced a torn data page; the matrix lost its interesting case")
	}
}
