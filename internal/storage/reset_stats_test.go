package storage

import (
	"reflect"
	"testing"
)

// Stats/ResetStats pairs must zero every counter. The assertions
// reflect over the snapshot structs so a counter added later cannot be
// silently missed: an unclassified field kind fails the test until the
// new field is reset (or a deliberate exemption is added here), and the
// setup is required to make every existing counter nonzero first, so a
// ResetStats that forgets a field fails rather than vacuously passing.
func TestBufferPoolResetStatsZeroesEveryField(t *testing.T) {
	fi := NewFaultInjector(NewDisk(128), 1)
	pool := NewBufferPool(fi, 2, LRU)

	// Misses and pins via GetNew; evictions and write-backs by dirtying
	// more pages than the pool holds frames.
	var ids []PageID
	for i := 0; i < 4; i++ {
		f, err := pool.GetNew()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i)
		f.MarkDirty()
		ids = append(ids, f.ID())
		f.Unpin()
	}
	// A write-back error: the next eviction's device write faults once,
	// so this GetNew fails and the victim stays resident and dirty.
	fi.Schedule(Fault{Op: OpWrite})
	if _, err := pool.GetNew(); err == nil {
		t.Fatal("GetNew succeeded through an injected write-back fault")
	}
	// A physical read plus a hit: re-fetch an evicted page twice.
	for i := 0; i < 2; i++ {
		f, err := pool.Get(ids[0])
		if err != nil {
			t.Fatal(err)
		}
		f.Unpin()
	}

	pre := pool.Stats()
	preV := reflect.ValueOf(pre)
	for i := 0; i < preV.NumField(); i++ {
		if preV.Field(i).Uint() == 0 {
			t.Errorf("setup left BufferStats.%s zero — the reset below would not prove anything for it",
				preV.Type().Field(i).Name)
		}
	}

	pool.ResetStats()
	assertAllFieldsZero(t, reflect.ValueOf(pool.Stats()), "BufferStats")

	// The device underneath has its own pair (FaultInjector delegates
	// to the wrapped disk — the contract must hold through the wrapper).
	if err := fi.Free(ids[1]); err != nil {
		t.Fatal(err)
	}
	ds := fi.Stats()
	dsV := reflect.ValueOf(ds)
	for i := 0; i < dsV.NumField(); i++ {
		if dsV.Field(i).Uint() == 0 {
			t.Errorf("setup left DiskStats.%s zero — the reset below would not prove anything for it",
				dsV.Type().Field(i).Name)
		}
	}
	fi.ResetStats()
	assertAllFieldsZero(t, reflect.ValueOf(fi.Stats()), "DiskStats")
}

func assertAllFieldsZero(t *testing.T, v reflect.Value, name string) {
	t.Helper()
	for i := 0; i < v.NumField(); i++ {
		f := v.Type().Field(i)
		if f.Type.Kind() != reflect.Uint64 {
			t.Errorf("%s.%s: unclassified field of kind %s — reset it in ResetStats or classify it here",
				name, f.Name, f.Type.Kind())
			continue
		}
		if got := v.Field(i).Uint(); got != 0 {
			t.Errorf("%s.%s = %d after ResetStats, want 0", name, f.Name, got)
		}
	}
}
