package relation

import (
	"fmt"

	"asr/internal/gom"
)

// JoinKind selects one of the four join operators of §3: the natural
// join ⨝ and the full/left/right outer joins ⟗/⟕/⟖, all taken "on the
// last column of the first relation and the first column of the second"
// (Definition 3.4).
type JoinKind int

// The four join kinds.
const (
	NaturalJoin JoinKind = iota
	FullOuterJoin
	LeftOuterJoin
	RightOuterJoin
)

// String names the operator.
func (k JoinKind) String() string {
	switch k {
	case NaturalJoin:
		return "join"
	case FullOuterJoin:
		return "full-outer-join"
	case LeftOuterJoin:
		return "left-outer-join"
	case RightOuterJoin:
		return "right-outer-join"
	default:
		return fmt.Sprintf("JoinKind(%d)", int(k))
	}
}

// Join computes l ∘ r for the chosen operator, joining on l's last and
// r's first column. The join column appears once in the result. NULL
// join values never match (a partial path ending in NULL has no
// continuation); under the outer variants, unmatched tuples are padded
// with NULLs on the opposite side. The result has arity
// l.Arity()+r.Arity()-1.
func Join(kind JoinKind, name string, l, r *Relation) (*Relation, error) {
	if l.Arity() == 0 || r.Arity() == 0 {
		return nil, fmt.Errorf("relation: join %s: empty-arity operand", name)
	}
	cols := append(l.Columns(), r.Columns()[1:]...)
	out := New(name, cols...)
	out.rows = make(map[string]Tuple, l.Cardinality())

	// Hash r by its first column. Tuples are tracked by position, and
	// hash keys go through one reused scratch buffer with the
	// map[string(scratch)] lookup fast path, so the probe side of the
	// join allocates nothing per row.
	rts := r.Tuples()
	index := make(map[string][]int, len(rts))
	var scratch []byte
	for i, rt := range rts {
		if rt[0] == nil {
			continue // NULL never matches
		}
		scratch = gom.AppendValueString(scratch[:0], rt[0])
		if is, ok := index[string(scratch)]; ok {
			index[string(scratch)] = append(is, i)
		} else {
			index[string(scratch)] = []int{i}
		}
	}
	matchedRight := make([]bool, len(rts))

	// insert applies set semantics; the key string is only materialized
	// for rows not already present.
	insert := func(row Tuple) {
		scratch = row.AppendKey(scratch[:0])
		if _, ok := out.rows[string(scratch)]; !ok {
			out.rows[string(scratch)] = row
		}
	}

	for _, lt := range l.Tuples() {
		var matches []int
		if last := lt[len(lt)-1]; last != nil {
			scratch = gom.AppendValueString(scratch[:0], last)
			matches = index[string(scratch)]
		}
		if len(matches) == 0 {
			if kind == FullOuterJoin || kind == LeftOuterJoin {
				row := make(Tuple, len(cols))
				copy(row, lt)
				insert(row)
			}
			continue
		}
		for _, ri := range matches {
			row := make(Tuple, 0, len(cols))
			row = append(row, lt...)
			row = append(row, rts[ri][1:]...)
			insert(row)
			matchedRight[ri] = true
		}
	}

	if kind == FullOuterJoin || kind == RightOuterJoin {
		for ri, rt := range rts {
			if matchedRight[ri] {
				continue
			}
			row := make(Tuple, len(cols))
			copy(row[l.Arity()-1:], rt)
			insert(row)
		}
	}
	return out, nil
}

// JoinChain folds a sequence of relations with the same operator. The
// assoc parameter matters for outer joins: the paper builds E_left
// left-associatively ((E_0 ⟕ E_1) ⟕ …, Definition 3.6) and E_right
// right-associatively (E_0 ⟖ (… ⟖ E_{n-1}), Definition 3.7).
func JoinChain(kind JoinKind, name string, leftAssoc bool, rels ...*Relation) (*Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("relation: JoinChain %s: no operands", name)
	}
	if len(rels) == 1 {
		return rels[0].Clone(name), nil
	}
	var acc *Relation
	var err error
	if leftAssoc {
		acc = rels[0]
		for _, r := range rels[1:] {
			acc, err = Join(kind, name, acc, r)
			if err != nil {
				return nil, err
			}
		}
	} else {
		acc = rels[len(rels)-1]
		for i := len(rels) - 2; i >= 0; i-- {
			acc, err = Join(kind, name, rels[i], acc)
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}
