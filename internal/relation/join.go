package relation

import (
	"fmt"
)

// JoinKind selects one of the four join operators of §3: the natural
// join ⨝ and the full/left/right outer joins ⟗/⟕/⟖, all taken "on the
// last column of the first relation and the first column of the second"
// (Definition 3.4).
type JoinKind int

// The four join kinds.
const (
	NaturalJoin JoinKind = iota
	FullOuterJoin
	LeftOuterJoin
	RightOuterJoin
)

// String names the operator.
func (k JoinKind) String() string {
	switch k {
	case NaturalJoin:
		return "join"
	case FullOuterJoin:
		return "full-outer-join"
	case LeftOuterJoin:
		return "left-outer-join"
	case RightOuterJoin:
		return "right-outer-join"
	default:
		return fmt.Sprintf("JoinKind(%d)", int(k))
	}
}

// Join computes l ∘ r for the chosen operator, joining on l's last and
// r's first column. The join column appears once in the result. NULL
// join values never match (a partial path ending in NULL has no
// continuation); under the outer variants, unmatched tuples are padded
// with NULLs on the opposite side. The result has arity
// l.Arity()+r.Arity()-1.
func Join(kind JoinKind, name string, l, r *Relation) (*Relation, error) {
	if l.Arity() == 0 || r.Arity() == 0 {
		return nil, fmt.Errorf("relation: join %s: empty-arity operand", name)
	}
	cols := append(l.Columns(), r.Columns()[1:]...)
	out := New(name, cols...)

	// Hash r by its first column.
	index := make(map[string][]Tuple, r.Cardinality())
	for _, rt := range r.Tuples() {
		if rt[0] == nil {
			continue // NULL never matches
		}
		k := rt[0].String()
		index[k] = append(index[k], rt)
	}
	matchedRight := make(map[string]bool)

	for _, lt := range l.Tuples() {
		var matches []Tuple
		if last := lt[len(lt)-1]; last != nil {
			matches = index[last.String()]
		}
		if len(matches) == 0 {
			if kind == FullOuterJoin || kind == LeftOuterJoin {
				row := make(Tuple, len(cols))
				copy(row, lt)
				out.rows[row.Key()] = row
			}
			continue
		}
		for _, rt := range matches {
			row := make(Tuple, 0, len(cols))
			row = append(row, lt...)
			row = append(row, rt[1:]...)
			out.rows[row.Key()] = row
			matchedRight[rt.Key()] = true
		}
	}

	if kind == FullOuterJoin || kind == RightOuterJoin {
		for _, rt := range r.Tuples() {
			if matchedRight[rt.Key()] {
				continue
			}
			row := make(Tuple, len(cols))
			copy(row[l.Arity()-1:], rt)
			out.rows[row.Key()] = row
		}
	}
	return out, nil
}

// JoinChain folds a sequence of relations with the same operator. The
// assoc parameter matters for outer joins: the paper builds E_left
// left-associatively ((E_0 ⟕ E_1) ⟕ …, Definition 3.6) and E_right
// right-associatively (E_0 ⟖ (… ⟖ E_{n-1}), Definition 3.7).
func JoinChain(kind JoinKind, name string, leftAssoc bool, rels ...*Relation) (*Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("relation: JoinChain %s: no operands", name)
	}
	if len(rels) == 1 {
		return rels[0].Clone(name), nil
	}
	var acc *Relation
	var err error
	if leftAssoc {
		acc = rels[0]
		for _, r := range rels[1:] {
			acc, err = Join(kind, name, acc, r)
			if err != nil {
				return nil, err
			}
		}
	} else {
		acc = rels[len(rels)-1]
		for i := len(rels) - 2; i >= 0; i-- {
			acc, err = Join(kind, name, rels[i], acc)
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}
