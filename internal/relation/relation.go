// Package relation provides the small relational-algebra substrate that
// access support relations are defined with (Kemper & Moerkotte, §3):
// relations of OID/value tuples admitting NULLs, the natural join and the
// full/left/right outer joins on the last column of the first operand and
// the first column of the second (the paper's ⨝, ⟗, ⟕, ⟖), projection,
// and set-semantics deduplication.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"asr/internal/gom"
)

// Tuple is one row: a slice of possibly-NULL values. OID columns carry
// gom.Ref values, value columns carry atomic gom values, and NULL is nil.
type Tuple []gom.Value

// Key returns a canonical string key for set semantics and sorting.
func (t Tuple) Key() string {
	return string(t.AppendKey(nil))
}

// AppendKey appends the canonical key to dst and returns the extended
// slice — the scratch-buffer form for hot paths (joins, set inserts)
// that key maps via the compiler's map[string(…)] fast path instead of
// materializing one string per row. Byte-identical to Key.
func (t Tuple) AppendKey(dst []byte) []byte {
	for i, v := range t {
		if i > 0 {
			dst = append(dst, '\x00')
		}
		dst = gom.AppendValueString(dst, v)
	}
	return dst
}

// Equal reports column-wise equality (NULL equals NULL).
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !gom.ValuesEqual(t[i], u[i]) {
			return false
		}
	}
	return true
}

// IsAllNull reports whether every column is NULL.
func (t Tuple) IsAllNull() bool {
	for _, v := range t {
		if v != nil {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// String renders the row in the paper's table style.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = gom.ValueString(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// OIDs makes a tuple of references from OIDs; NilOID becomes NULL.
func OIDs(ids ...gom.OID) Tuple {
	t := make(Tuple, len(ids))
	for i, id := range ids {
		if !id.IsNil() {
			t[i] = gom.Ref(id)
		}
	}
	return t
}

// Relation is a named relation with set semantics over its tuples.
type Relation struct {
	name    string
	columns []string
	rows    map[string]Tuple
}

// New creates an empty relation with the given column names.
func New(name string, columns ...string) *Relation {
	return &Relation{name: name, columns: append([]string(nil), columns...), rows: map[string]Tuple{}}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Columns returns the column names.
func (r *Relation) Columns() []string { return append([]string(nil), r.columns...) }

// Arity returns the column count.
func (r *Relation) Arity() int { return len(r.columns) }

// Cardinality returns the tuple count.
func (r *Relation) Cardinality() int { return len(r.rows) }

// Insert adds a tuple (set semantics: duplicates are absorbed). The
// tuple's arity must match the relation's.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != len(r.columns) {
		return fmt.Errorf("relation %s: tuple arity %d, want %d", r.name, len(t), len(r.columns))
	}
	r.rows[t.Key()] = t.Clone()
	return nil
}

// MustInsert is Insert panicking on error.
func (r *Relation) MustInsert(t Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// Delete removes a tuple if present; it reports whether one was removed.
func (r *Relation) Delete(t Tuple) bool {
	k := t.Key()
	if _, ok := r.rows[k]; !ok {
		return false
	}
	delete(r.rows, k)
	return true
}

// Contains reports whether the relation holds the tuple.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.rows[t.Key()]
	return ok
}

// Tuples returns all rows sorted by canonical key (deterministic).
func (r *Relation) Tuples() []Tuple {
	keys := make([]string, 0, len(r.rows))
	for k := range r.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.rows[k]
	}
	return out
}

// Each calls fn for every tuple in deterministic order; fn returning
// false stops the iteration.
func (r *Relation) Each(fn func(Tuple) bool) {
	for _, t := range r.Tuples() {
		if !fn(t) {
			return
		}
	}
}

// Clone returns a deep copy with the given name.
func (r *Relation) Clone(name string) *Relation {
	out := New(name, r.columns...)
	for _, t := range r.rows {
		out.rows[t.Key()] = t.Clone()
	}
	return out
}

// Equal reports whether two relations hold exactly the same tuple sets
// (column names are ignored).
func (r *Relation) Equal(s *Relation) bool {
	if len(r.rows) != len(s.rows) {
		return false
	}
	for k := range r.rows {
		if _, ok := s.rows[k]; !ok {
			return false
		}
	}
	return true
}

// Project returns the projection onto columns lo..hi inclusive,
// deduplicated; rows that are entirely NULL after projection are dropped
// (they carry no path information, §3 Definition 3.8).
func (r *Relation) Project(name string, lo, hi int) (*Relation, error) {
	if lo < 0 || hi >= len(r.columns) || lo > hi {
		return nil, fmt.Errorf("relation %s: Project[%d..%d] out of range (arity %d)", r.name, lo, hi, len(r.columns))
	}
	out := New(name, r.columns[lo:hi+1]...)
	for _, t := range r.rows {
		p := t[lo : hi+1].Clone()
		if p.IsAllNull() {
			continue
		}
		out.rows[p.Key()] = p
	}
	return out, nil
}

// Select returns the rows for which pred holds.
func (r *Relation) Select(name string, pred func(Tuple) bool) *Relation {
	out := New(name, r.columns...)
	for _, t := range r.rows {
		if pred(t) {
			out.rows[t.Key()] = t.Clone()
		}
	}
	return out
}

// String renders the relation as an aligned table in the paper's style.
func (r *Relation) String() string {
	rows := r.Tuples()
	width := make([]int, len(r.columns))
	cells := make([][]string, len(rows))
	for i, c := range r.columns {
		width[i] = len(c)
	}
	for ri, t := range rows {
		cells[ri] = make([]string, len(t))
		for ci, v := range t {
			s := gom.ValueString(v)
			cells[ri][ci] = s
			if len(s) > width[ci] {
				width[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d tuples)\n", r.name, len(rows))
	for i, c := range r.columns {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", width[i], c)
	}
	b.WriteString("\n")
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], s)
		}
		b.WriteString("\n")
	}
	return b.String()
}
