package relation

import (
	"strings"
	"testing"

	"asr/internal/gom"
)

func TestTupleBasics(t *testing.T) {
	a := OIDs(1, 2, 0)
	if a[2] != nil {
		t.Error("NilOID must map to NULL")
	}
	b := Tuple{gom.Ref(1), gom.Ref(2), nil}
	if !a.Equal(b) {
		t.Errorf("%v != %v", a, b)
	}
	if a.Key() != b.Key() {
		t.Error("keys differ for equal tuples")
	}
	if !(Tuple{nil, nil}).IsAllNull() || a.IsAllNull() {
		t.Error("IsAllNull broken")
	}
	c := a.Clone()
	c[0] = gom.Ref(9)
	if a[0].(gom.Ref) != gom.Ref(1) {
		t.Error("Clone aliases storage")
	}
	if got := OIDs(1, 0).String(); got != "(i1, NULL)" {
		t.Errorf("String = %q", got)
	}
}

func TestRelationSetSemantics(t *testing.T) {
	r := New("R", "A", "B")
	r.MustInsert(OIDs(1, 2))
	r.MustInsert(OIDs(1, 2))
	r.MustInsert(OIDs(1, 3))
	if r.Cardinality() != 2 {
		t.Fatalf("cardinality = %d, want 2", r.Cardinality())
	}
	if !r.Contains(OIDs(1, 2)) || r.Contains(OIDs(9, 9)) {
		t.Error("Contains broken")
	}
	if !r.Delete(OIDs(1, 2)) || r.Delete(OIDs(1, 2)) {
		t.Error("Delete broken")
	}
	if err := r.Insert(OIDs(1)); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestTuplesDeterministicOrder(t *testing.T) {
	r := New("R", "A")
	r.MustInsert(OIDs(3))
	r.MustInsert(OIDs(1))
	r.MustInsert(OIDs(2))
	first := r.Tuples()
	second := r.Tuples()
	for i := range first {
		if !first[i].Equal(second[i]) {
			t.Fatal("iteration order not deterministic")
		}
	}
}

func TestProject(t *testing.T) {
	r := New("R", "A", "B", "C")
	r.MustInsert(OIDs(1, 2, 3))
	r.MustInsert(OIDs(1, 2, 4))
	r.MustInsert(Tuple{nil, nil, gom.Ref(5)})
	p, err := r.Project("P", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// (1,2) dedups; (NULL,NULL) is dropped.
	if p.Cardinality() != 1 {
		t.Fatalf("projection = %v", p.Tuples())
	}
	if _, err := r.Project("P", 1, 5); err == nil {
		t.Error("out-of-range projection accepted")
	}
	if _, err := r.Project("P", 2, 1); err == nil {
		t.Error("inverted projection accepted")
	}
}

func TestNaturalJoin(t *testing.T) {
	l := New("L", "A", "B")
	l.MustInsert(OIDs(1, 10))
	l.MustInsert(OIDs(2, 20))
	l.MustInsert(Tuple{gom.Ref(3), nil}) // NULL join value: no match
	r := New("R", "B", "C")
	r.MustInsert(OIDs(10, 100))
	r.MustInsert(OIDs(10, 101))
	r.MustInsert(OIDs(30, 300))

	j, err := Join(NaturalJoin, "J", l, r)
	if err != nil {
		t.Fatal(err)
	}
	if j.Arity() != 3 {
		t.Fatalf("arity = %d", j.Arity())
	}
	want := []Tuple{OIDs(1, 10, 100), OIDs(1, 10, 101)}
	if j.Cardinality() != len(want) {
		t.Fatalf("join = %v", j.Tuples())
	}
	for _, w := range want {
		if !j.Contains(w) {
			t.Errorf("missing %v", w)
		}
	}
}

func TestOuterJoins(t *testing.T) {
	l := New("L", "A", "B")
	l.MustInsert(OIDs(1, 10)) // matches
	l.MustInsert(OIDs(2, 20)) // dangling left
	r := New("R", "B", "C")
	r.MustInsert(OIDs(10, 100)) // matches
	r.MustInsert(OIDs(30, 300)) // dangling right

	full, _ := Join(FullOuterJoin, "F", l, r)
	wantFull := []Tuple{
		OIDs(1, 10, 100),
		{gom.Ref(2), gom.Ref(20), nil},
		{nil, gom.Ref(30), gom.Ref(300)},
	}
	if full.Cardinality() != 3 {
		t.Fatalf("full = %v", full.Tuples())
	}
	for _, w := range wantFull {
		if !full.Contains(w) {
			t.Errorf("full missing %v", w)
		}
	}

	left, _ := Join(LeftOuterJoin, "L", l, r)
	if left.Cardinality() != 2 || !left.Contains(Tuple{gom.Ref(2), gom.Ref(20), nil}) {
		t.Errorf("left = %v", left.Tuples())
	}
	if left.Contains(Tuple{nil, gom.Ref(30), gom.Ref(300)}) {
		t.Error("left outer join kept dangling right tuple")
	}

	right, _ := Join(RightOuterJoin, "R", l, r)
	if right.Cardinality() != 2 || !right.Contains(Tuple{nil, gom.Ref(30), gom.Ref(300)}) {
		t.Errorf("right = %v", right.Tuples())
	}
}

func TestOuterJoinNullPadding(t *testing.T) {
	// A left tuple ending in NULL must be padded, never matched.
	l := New("L", "A", "B")
	l.MustInsert(Tuple{gom.Ref(1), nil})
	r := New("R", "B", "C")
	r.MustInsert(Tuple{nil, gom.Ref(2)}) // NULL first column: never matches either
	full, _ := Join(FullOuterJoin, "F", l, r)
	if full.Cardinality() != 2 {
		t.Fatalf("full = %v", full.Tuples())
	}
	if !full.Contains(Tuple{gom.Ref(1), nil, nil}) || !full.Contains(Tuple{nil, nil, gom.Ref(2)}) {
		t.Errorf("padding wrong: %v", full.Tuples())
	}
}

func TestJoinChainAssociativity(t *testing.T) {
	// E0=(a,b), E1=(b,c) with a dangling E1 start, E2=(c,d).
	e0 := New("E0", "S0", "S1")
	e0.MustInsert(OIDs(1, 10))
	e1 := New("E1", "S1", "S2")
	e1.MustInsert(OIDs(10, 100))
	e1.MustInsert(OIDs(11, 110)) // not reachable from E0
	e2 := New("E2", "S2", "S3")
	e2.MustInsert(OIDs(100, 1000))

	leftC, err := JoinChain(LeftOuterJoin, "left", true, e0, e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	// Left-complete: everything originating in t_0 survives; dangling E1
	// row disappears.
	if leftC.Cardinality() != 1 || !leftC.Contains(OIDs(1, 10, 100, 1000)) {
		t.Errorf("left chain = %v", leftC.Tuples())
	}

	rightC, err := JoinChain(RightOuterJoin, "right", false, e0, e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	// Right-complete: paths reaching t_3 survive; (11,110) leads only to
	// a dangling end and disappears under right-association.
	if rightC.Cardinality() != 1 || !rightC.Contains(OIDs(1, 10, 100, 1000)) {
		t.Errorf("right chain = %v", rightC.Tuples())
	}

	fullC, err := JoinChain(FullOuterJoin, "full", true, e0, e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if fullC.Cardinality() != 2 || !fullC.Contains(Tuple{nil, gom.Ref(11), gom.Ref(110), nil}) {
		t.Errorf("full chain = %v", fullC.Tuples())
	}

	single, err := JoinChain(NaturalJoin, "one", true, e0)
	if err != nil || single.Cardinality() != 1 {
		t.Errorf("singleton chain broken: %v %v", single, err)
	}
	if _, err := JoinChain(NaturalJoin, "none", true); err == nil {
		t.Error("empty chain accepted")
	}
}

func TestRelationEqualCloneString(t *testing.T) {
	r := New("R", "A", "B")
	r.MustInsert(OIDs(1, 2))
	c := r.Clone("C")
	if !r.Equal(c) {
		t.Error("clone not equal")
	}
	c.MustInsert(OIDs(3, 4))
	if r.Equal(c) {
		t.Error("Equal ignores cardinality")
	}
	s := r.String()
	if !strings.Contains(s, "i1") || !strings.Contains(s, "R (1 tuples)") {
		t.Errorf("String = %q", s)
	}
}

func TestSelect(t *testing.T) {
	r := New("R", "A", "B")
	r.MustInsert(OIDs(1, 2))
	r.MustInsert(OIDs(3, 4))
	s := r.Select("S", func(t Tuple) bool { return t[0].Equal(gom.Ref(1)) })
	if s.Cardinality() != 1 || !s.Contains(OIDs(1, 2)) {
		t.Errorf("Select = %v", s.Tuples())
	}
}
