package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"asr/internal/gom"
)

// referenceJoin is a deliberately naive nested-loop implementation of
// the four join operators, used as the oracle for property tests.
func referenceJoin(kind JoinKind, l, r *Relation) *Relation {
	cols := append(l.Columns(), r.Columns()[1:]...)
	out := New("ref", cols...)
	matchedLeft := map[string]bool{}
	matchedRight := map[string]bool{}
	for _, lt := range l.Tuples() {
		for _, rt := range r.Tuples() {
			lv, rv := lt[len(lt)-1], rt[0]
			if lv == nil || rv == nil || !lv.Equal(rv) {
				continue
			}
			row := append(append(Tuple{}, lt...), rt[1:]...)
			out.MustInsert(row)
			matchedLeft[lt.Key()] = true
			matchedRight[rt.Key()] = true
		}
	}
	if kind == FullOuterJoin || kind == LeftOuterJoin {
		for _, lt := range l.Tuples() {
			if matchedLeft[lt.Key()] {
				continue
			}
			row := make(Tuple, len(cols))
			copy(row, lt)
			out.MustInsert(row)
		}
	}
	if kind == FullOuterJoin || kind == RightOuterJoin {
		for _, rt := range r.Tuples() {
			if matchedRight[rt.Key()] {
				continue
			}
			row := make(Tuple, len(cols))
			copy(row[l.Arity()-1:], rt)
			out.MustInsert(row)
		}
	}
	return out
}

// randomRelation builds a relation whose join-column values come from a
// small domain (to force matches) and include NULLs.
func randomRelation(rng *rand.Rand, name string, arity, rows, domain int) *Relation {
	cols := make([]string, arity)
	for i := range cols {
		cols[i] = string(rune('A' + i))
	}
	rel := New(name, cols...)
	for k := 0; k < rows; k++ {
		t := make(Tuple, arity)
		for i := range t {
			if rng.Intn(6) == 0 {
				continue // NULL
			}
			t[i] = gom.Ref(gom.OID(rng.Intn(domain) + 1))
		}
		rel.MustInsert(t)
	}
	return rel
}

func TestJoinMatchesNestedLoopReference(t *testing.T) {
	f := func(seed int64, la, ra, lr, rr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomRelation(rng, "L", int(la%3)+2, int(lr%12), 5)
		r := randomRelation(rng, "R", int(ra%3)+2, int(rr%12), 5)
		for _, kind := range []JoinKind{NaturalJoin, FullOuterJoin, LeftOuterJoin, RightOuterJoin} {
			got, err := Join(kind, "J", l, r)
			if err != nil {
				return false
			}
			want := referenceJoin(kind, l, r)
			if !got.Equal(want) {
				t.Logf("%v:\nL:\n%v\nR:\n%v\ngot:\n%v\nwant:\n%v", kind, l, r, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestJoinCardinalityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomRelation(rng, "L", 2, 10, 4)
		r := randomRelation(rng, "R", 2, 10, 4)
		nat, _ := Join(NaturalJoin, "J", l, r)
		full, _ := Join(FullOuterJoin, "J", l, r)
		left, _ := Join(LeftOuterJoin, "J", l, r)
		right, _ := Join(RightOuterJoin, "J", l, r)
		// ⨝ ⊆ ⟕,⟖ ⊆ ⟗ in cardinality, and the outer joins never exceed
		// matches + unmatched-side rows.
		if !(nat.Cardinality() <= left.Cardinality() &&
			nat.Cardinality() <= right.Cardinality() &&
			left.Cardinality() <= full.Cardinality() &&
			right.Cardinality() <= full.Cardinality()) {
			return false
		}
		if full.Cardinality() > nat.Cardinality()+l.Cardinality()+r.Cardinality() {
			return false
		}
		// Every natural-join row appears in each outer variant.
		ok := true
		nat.Each(func(tu Tuple) bool {
			if !full.Contains(tu) || !left.Contains(tu) || !right.Contains(tu) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
