package relation

import (
	"math/rand"
	"testing"

	"asr/internal/gom"
)

// randomValue draws from every value kind, including NULL, the nil
// reference, and strings needing quote-escaping.
func randomValue(rng *rand.Rand) gom.Value {
	switch rng.Intn(8) {
	case 0:
		return nil
	case 1:
		return gom.Ref(gom.NilOID)
	case 2:
		return gom.Ref(gom.OID(rng.Uint64() % 1e6))
	case 3:
		s := []string{"Door", "a\"b\\c", "NULL", "", "päth\n"}[rng.Intn(5)]
		return gom.String(s)
	case 4:
		return gom.Integer(rng.Int63() - rng.Int63())
	case 5:
		return gom.Decimal(rng.NormFloat64() * 1e3)
	case 6:
		return gom.Bool(rng.Intn(2) == 0)
	default:
		return gom.Char([]rune{'a', 'Ω', '\x00', '⨝'}[rng.Intn(4)])
	}
}

// The append forms must render byte-identically to the string forms —
// stored tree keys and map keys built either way have to collide.
func TestAppendValueStringMatchesValueString(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		v := randomValue(rng)
		if got, want := string(gom.AppendValueString(nil, v)), gom.ValueString(v); got != want {
			t.Fatalf("AppendValueString(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	scratch := make([]byte, 0, 64)
	for i := 0; i < 500; i++ {
		tup := make(Tuple, 1+rng.Intn(6))
		for c := range tup {
			tup[c] = randomValue(rng)
		}
		scratch = tup.AppendKey(scratch[:0])
		if string(scratch) != tup.Key() {
			t.Fatalf("AppendKey(%v) = %q, Key = %q", tup, scratch, tup.Key())
		}
	}
}
