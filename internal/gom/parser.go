package gom

import (
	"fmt"
	"strings"
	"unicode"
)

// VarDecl is a parsed `var Name: TYPE;` declaration from a schema source.
// The parser does not instantiate objects; callers bind variables on an
// ObjectBase themselves.
type VarDecl struct {
	Name string
	Type *Type
}

// ParseSchema parses schema source text in the paper's declaration syntax
// (§2.1, §2.2) into a fresh Schema, supporting forward references:
//
//	type ROBOT SET is {ROBOT};
//	type ROBOT is [Name: STRING, Arm: ARM];
//	type WELDING ROBOT is supertypes (ROBOT) [Voltage: INTEGER];
//	type PRODLIST is <Product>;
//	var OurRobots: ROBOT SET;
//
// Multi-word type names (the paper writes "ROBOT SET") are admitted and
// normalized by replacing internal spaces with underscores. Comments run
// from "--" or "//" to end of line.
func ParseSchema(src string) (*Schema, []VarDecl, error) {
	p := &schemaParser{lex: newLexer(src)}
	if err := p.parse(); err != nil {
		return nil, nil, err
	}
	return p.resolve()
}

// MustParseSchema is ParseSchema panicking on error.
func MustParseSchema(src string) (*Schema, []VarDecl) {
	s, vars, err := ParseSchema(src)
	if err != nil {
		panic(err)
	}
	return s, vars
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokPunct // one of [ ] { } < > ( ) : ; ,
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) next() token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-',
			c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.ContainsRune("[]{}<>():;,", rune(c)):
			l.pos++
			return token{tokPunct, string(c), l.line}
		case isIdentRune(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
				l.pos++
			}
			return token{tokIdent, l.src[start:l.pos], l.line}
		default:
			// Skip unknown bytes (e.g. stray punctuation in prose).
			l.pos++
		}
	}
	return token{tokEOF, "", l.line}
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Unresolved declaration forms collected in pass one.
type typeDecl struct {
	name       string
	kind       TypeKind
	supertypes []string
	attrs      []struct{ name, typ string }
	elem       string
	line       int
}

type varDecl struct {
	name, typ string
	line      int
}

type schemaParser struct {
	lex   *lexer
	tok   token
	types []typeDecl
	vars  []varDecl
}

func (p *schemaParser) advance() { p.tok = p.lex.next() }

func (p *schemaParser) errf(format string, args ...any) error {
	return fmt.Errorf("gom: schema line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *schemaParser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, found %q", s, p.tok.text)
	}
	p.advance()
	return nil
}

// ident consumes one identifier.
func (p *schemaParser) ident() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", p.tok.text)
	}
	s := p.tok.text
	p.advance()
	return s, nil
}

// typeName consumes a possibly multi-word type name, stopping before the
// given keyword or any punctuation; words are joined with underscores
// ("ROBOT SET" → "ROBOT_SET").
func (p *schemaParser) typeName(stopKeyword string) (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected type name, found %q", p.tok.text)
	}
	var words []string
	for p.tok.kind == tokIdent && p.tok.text != stopKeyword {
		words = append(words, p.tok.text)
		p.advance()
	}
	if len(words) == 0 {
		return "", p.errf("expected type name before %q", p.tok.text)
	}
	return strings.Join(words, "_"), nil
}

func (p *schemaParser) parse() error {
	p.advance()
	for p.tok.kind != tokEOF {
		switch {
		case p.tok.kind == tokIdent && p.tok.text == "type":
			p.advance()
			if err := p.parseTypeDecl(); err != nil {
				return err
			}
		case p.tok.kind == tokIdent && p.tok.text == "var":
			p.advance()
			if err := p.parseVarDecl(); err != nil {
				return err
			}
		default:
			return p.errf("expected 'type' or 'var', found %q", p.tok.text)
		}
	}
	return nil
}

func (p *schemaParser) parseTypeDecl() error {
	line := p.tok.line
	name, err := p.typeName("is")
	if err != nil {
		return err
	}
	if p.tok.kind != tokIdent || p.tok.text != "is" {
		return p.errf("type %s: expected 'is', found %q", name, p.tok.text)
	}
	p.advance()
	d := typeDecl{name: name, line: line}

	if p.tok.kind == tokIdent && p.tok.text == "supertypes" {
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return err
		}
		for {
			sup, err := p.ident()
			if err != nil {
				return err
			}
			d.supertypes = append(d.supertypes, sup)
			if p.tok.kind == tokPunct && p.tok.text == "," {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
	}

	switch {
	case p.tok.kind == tokPunct && p.tok.text == "[":
		d.kind = TupleType
		p.advance()
		for !(p.tok.kind == tokPunct && p.tok.text == "]") {
			an, err := p.ident()
			if err != nil {
				return err
			}
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			at, err := p.ident()
			if err != nil {
				return err
			}
			d.attrs = append(d.attrs, struct{ name, typ string }{an, at})
			if p.tok.kind == tokPunct && p.tok.text == "," {
				p.advance()
			}
		}
		p.advance() // ]
	case p.tok.kind == tokPunct && p.tok.text == "{":
		if len(d.supertypes) > 0 {
			return p.errf("type %s: set types cannot declare supertypes", name)
		}
		d.kind = SetType
		p.advance()
		elem, err := p.ident()
		if err != nil {
			return err
		}
		d.elem = elem
		if err := p.expectPunct("}"); err != nil {
			return err
		}
	case p.tok.kind == tokPunct && p.tok.text == "<":
		if len(d.supertypes) > 0 {
			return p.errf("type %s: list types cannot declare supertypes", name)
		}
		d.kind = ListType
		p.advance()
		elem, err := p.ident()
		if err != nil {
			return err
		}
		d.elem = elem
		if err := p.expectPunct(">"); err != nil {
			return err
		}
	default:
		return p.errf("type %s: expected '[', '{' or '<', found %q", name, p.tok.text)
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	p.types = append(p.types, d)
	return nil
}

func (p *schemaParser) parseVarDecl() error {
	line := p.tok.line
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	typ, err := p.typeName(";")
	if err != nil {
		return err
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	p.vars = append(p.vars, varDecl{name: name, typ: typ, line: line})
	return nil
}

// resolve performs the second pass. Recursive schemas are legal in GOM —
// Definition 3.1 says path types are "not necessarily distinct", so e.g.
// `type Part is [Sub: PartSET]; type PartSET is {Part};` must parse.
// Resolution therefore creates type shells first, fills attribute and
// element references afterwards, and only forbids cycles through the
// supertype graph and through pure set/list element chains.
func (p *schemaParser) resolve() (*Schema, []VarDecl, error) {
	s := NewSchema()
	byName := make(map[string]*typeDecl, len(p.types))

	// Phase 1: register a shell per declaration.
	for i := range p.types {
		d := &p.types[i]
		if _, dup := byName[d.name]; dup {
			return nil, nil, fmt.Errorf("gom: schema line %d: type %q declared twice", d.line, d.name)
		}
		byName[d.name] = d
		t := &Type{name: d.name, kind: d.kind}
		if err := s.register(t); err != nil {
			return nil, nil, fmt.Errorf("gom: schema line %d: %w", d.line, err)
		}
	}

	lookup := func(d *typeDecl, name string) (*Type, error) {
		t, ok := s.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("gom: schema line %d: type %s references undefined type %q", d.line, d.name, name)
		}
		return t, nil
	}

	// Phase 2: fill references.
	for i := range p.types {
		d := &p.types[i]
		t := s.types[d.name]
		switch d.kind {
		case TupleType:
			for _, sn := range d.supertypes {
				st, err := lookup(d, sn)
				if err != nil {
					return nil, nil, err
				}
				if st.kind != TupleType {
					return nil, nil, fmt.Errorf("gom: schema line %d: supertype %q of %s is not tuple-structured", d.line, sn, d.name)
				}
				t.supertypes = append(t.supertypes, st)
			}
			for _, a := range d.attrs {
				at, err := lookup(d, a.typ)
				if err != nil {
					return nil, nil, err
				}
				t.ownAttrs = append(t.ownAttrs, Attribute{Name: a.name, Type: at})
			}
		case SetType, ListType:
			et, err := lookup(d, d.elem)
			if err != nil {
				return nil, nil, err
			}
			if d.kind == SetType && et.kind == SetType {
				return nil, nil, fmt.Errorf("gom: schema line %d: set type %s: powersets are not permitted", d.line, d.name)
			}
			t.elem = et
		}
	}

	// Phase 3: check the supertype graph is acyclic, then resolve the
	// inherited attribute sets in supertype-topological order.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[*Type]int)
	var order []*Type
	var visit func(t *Type) error
	visit = func(t *Type) error {
		switch state[t] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("gom: schema: supertype cycle through %q", t.name)
		}
		state[t] = visiting
		for _, sup := range t.supertypes {
			if err := visit(sup); err != nil {
				return err
			}
		}
		state[t] = done
		order = append(order, t)
		return nil
	}
	for _, d := range p.types {
		if d.kind == TupleType {
			if err := visit(s.types[d.name]); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, t := range order {
		if err := t.resolveAttributes(); err != nil {
			return nil, nil, err
		}
	}

	var vars []VarDecl
	for _, v := range p.vars {
		t, ok := s.Lookup(v.typ)
		if !ok {
			return nil, nil, fmt.Errorf("gom: schema line %d: var %s: undefined type %q", v.line, v.name, v.typ)
		}
		vars = append(vars, VarDecl{Name: v.name, Type: t})
	}
	return s, vars, nil
}
