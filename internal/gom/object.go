package gom

import (
	"fmt"
	"sort"
	"strings"
)

// Object is an object instance: the triple (identifier, value, type) of
// §2.2. Depending on the type's outer constructor the value part is a
// tuple of attribute values, a set, or a list. Objects are created and
// mutated only through their owning ObjectBase, which enforces strong
// typing and notifies registered observers (used for incremental access
// support relation maintenance).
//
// Object accessors share the owning ObjectBase's readers/writer lock:
// they are safe to call from any number of goroutines concurrently with
// each other and with base mutations (ID and Type are immutable and
// lock-free).
type Object struct {
	id   OID
	typ  *Type
	base *ObjectBase

	attrs map[string]Value // tuple objects; absent key == NULL
	set   map[string]Value // set objects, keyed by canonical value key
	list  []Value          // list objects
}

// ID returns the object identifier.
func (o *Object) ID() OID { return o.id }

// Type returns the object's type.
func (o *Object) Type() *Type { return o.typ }

// Attr returns the value of the named attribute, which is NULL (nil) if
// never assigned. The second result reports whether the attribute exists
// on the object's type at all.
func (o *Object) Attr(name string) (Value, bool) {
	o.base.mu.RLock()
	defer o.base.mu.RUnlock()
	return o.attrLocked(name)
}

// attrLocked is Attr without locking; o.base.mu must be held.
func (o *Object) attrLocked(name string) (Value, bool) {
	if o.typ.Kind() != TupleType {
		return nil, false
	}
	if _, ok := o.typ.Attribute(name); !ok {
		return nil, false
	}
	return o.attrs[name], true
}

// AttrOID returns the OID stored in a reference-valued attribute, or
// NilOID if the attribute is NULL or not a reference.
func (o *Object) AttrOID(name string) OID {
	v, _ := o.Attr(name)
	if r, ok := v.(Ref); ok {
		return r.OID()
	}
	return NilOID
}

// Len returns the element count of a set or list object, and 0 otherwise.
func (o *Object) Len() int {
	o.base.mu.RLock()
	defer o.base.mu.RUnlock()
	switch o.typ.Kind() {
	case SetType:
		return len(o.set)
	case ListType:
		return len(o.list)
	default:
		return 0
	}
}

// Elements returns the elements of a set object in a deterministic order
// (sorted by canonical key), or of a list object in list order.
func (o *Object) Elements() []Value {
	o.base.mu.RLock()
	defer o.base.mu.RUnlock()
	return o.elementsLocked()
}

// elementsLocked is Elements without locking; o.base.mu must be held.
func (o *Object) elementsLocked() []Value {
	switch o.typ.Kind() {
	case SetType:
		keys := make([]string, 0, len(o.set))
		for k := range o.set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]Value, len(keys))
		for i, k := range keys {
			out[i] = o.set[k]
		}
		return out
	case ListType:
		return append([]Value(nil), o.list...)
	default:
		return nil
	}
}

// ElementOIDs returns the OIDs of all reference elements of a set or
// list object, in deterministic order.
func (o *Object) ElementOIDs() []OID {
	var out []OID
	for _, v := range o.Elements() {
		if r, ok := v.(Ref); ok {
			out = append(out, r.OID())
		}
	}
	return out
}

// Contains reports whether a set object contains the given value.
func (o *Object) Contains(v Value) bool {
	o.base.mu.RLock()
	defer o.base.mu.RUnlock()
	if o.typ.Kind() != SetType {
		return false
	}
	_, ok := o.set[valueKey(v)]
	return ok
}

// String renders the object in the style of the paper's Figure 1/2
// extension tables.
func (o *Object) String() string {
	o.base.mu.RLock()
	defer o.base.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s", o.id, o.typ.Name())
	switch o.typ.Kind() {
	case TupleType:
		b.WriteString("[")
		for i, a := range o.typ.Attributes() {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s: %s", a.Name, ValueString(o.attrs[a.Name]))
		}
		b.WriteString("]")
	case SetType:
		b.WriteString("{")
		for i, v := range o.elementsLocked() {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ValueString(v))
		}
		b.WriteString("}")
	case ListType:
		b.WriteString("<")
		for i, v := range o.list {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ValueString(v))
		}
		b.WriteString(">")
	}
	return b.String()
}

// valueKey canonicalizes a value for set membership. Distinct kinds get
// distinct prefixes so e.g. Integer(1) and Decimal(1) do not collide.
func valueKey(v Value) string {
	if v == nil {
		return "N"
	}
	switch w := v.(type) {
	case Ref:
		return "r" + OID(w).String()
	case String:
		return "s" + string(w)
	case Integer:
		return "i" + fmt.Sprint(int64(w))
	case Decimal:
		return "d" + fmt.Sprint(float64(w))
	case Bool:
		return "b" + fmt.Sprint(bool(w))
	case Char:
		// Numeric form: string(rune) folds invalid runes to U+FFFD, which
		// would collide distinct values.
		return "c" + fmt.Sprint(int32(w))
	default:
		return "?" + v.String()
	}
}
