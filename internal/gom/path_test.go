package gom

import (
	"testing"
)

// robotSchema builds the §2.2 schema (linear path).
func robotSchema(t *testing.T) *Schema {
	t.Helper()
	s, _, err := ParseSchema(`
		type ROBOT_SET is {ROBOT};
		type ROBOT is [Name: STRING, Arm: ARM];
		type ARM is [Kinematics: STRING, MountedTool: TOOL];
		type TOOL is [Function: STRING, ManufacturedBy: MANUFACTURER];
		type MANUFACTURER is [Name: STRING, Location: STRING];
	`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// companySchema builds the §2.3 schema (path with set occurrences).
func companySchema(t *testing.T) *Schema {
	t.Helper()
	s, _, err := ParseSchema(`
		type Company is {Division};
		type Division is [Name: STRING, Manufactures: ProdSET];
		type ProdSET is {Product};
		type Product is [Name: STRING, Composition: BasePartSET];
		type BasePartSET is {BasePart};
		type BasePart is [Name: STRING, Price: DECIMAL];
	`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLinearPathResolution(t *testing.T) {
	s := robotSchema(t)
	p, err := ResolvePath(s.MustLookup("ROBOT"), "Arm", "MountedTool", "ManufacturedBy", "Location")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Errorf("Len = %d, want 4", p.Len())
	}
	if !p.IsLinear() || p.SetOccurrences() != 0 {
		t.Errorf("linear path misclassified: linear=%v k=%d", p.IsLinear(), p.SetOccurrences())
	}
	if p.Arity() != 5 {
		t.Errorf("Arity = %d, want n+k+1 = 5", p.Arity())
	}
	if got := p.String(); got != "ROBOT.Arm.MountedTool.ManufacturedBy.Location" {
		t.Errorf("String = %q", got)
	}
	cols := p.ColumnTypes()
	wantCols := []string{"ROBOT", "ARM", "TOOL", "MANUFACTURER", "STRING"}
	for i, w := range wantCols {
		if cols[i].Name() != w {
			t.Errorf("column %d = %s, want %s", i, cols[i].Name(), w)
		}
	}
}

func TestSetPathResolution(t *testing.T) {
	s := companySchema(t)
	p, err := ResolvePath(s.MustLookup("Division"), "Manufactures", "Composition", "Name")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3 (n)", p.Len())
	}
	if p.SetOccurrences() != 2 {
		t.Errorf("SetOccurrences = %d, want 2 (k)", p.SetOccurrences())
	}
	if p.Arity() != 6 {
		t.Errorf("Arity = %d, want n+k+1 = 6", p.Arity())
	}
	// Columns per Definition 3.2: Division, ProdSET, Product, BasePartSET, BasePart, STRING.
	want := []string{"Division", "ProdSET", "Product", "BasePartSET", "BasePart", "STRING"}
	for i, typ := range p.ColumnTypes() {
		if typ.Name() != want[i] {
			t.Errorf("column %d = %s, want %s", i, typ.Name(), want[i])
		}
	}
	// Object columns: t_0 -> 0, t_1 (Product) -> 2, t_2 (BasePart) -> 4, t_3 (Name) -> 5.
	for i, want := range []int{0, 2, 4, 5} {
		if got := p.ObjectColumn(i); got != want {
			t.Errorf("ObjectColumn(%d) = %d, want %d", i, got, want)
		}
	}
	// StepOfColumn is the inverse.
	for col, want := range []struct {
		step  int
		isSet bool
	}{{0, false}, {1, true}, {1, false}, {2, true}, {2, false}, {3, false}} {
		step, isSet := p.StepOfColumn(col)
		if step != want.step || isSet != want.isSet {
			t.Errorf("StepOfColumn(%d) = (%d,%v), want (%d,%v)", col, step, isSet, want.step, want.isSet)
		}
	}
	names := p.ColumnNames()
	if names[0] != "OID_Division" || names[5] != "VALUE_Name" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func TestPathValidationErrors(t *testing.T) {
	s := companySchema(t)
	div := s.MustLookup("Division")
	cases := []struct {
		name  string
		attrs []string
	}{
		{"unknown attribute", []string{"Manufactures", "Nope"}},
		{"atomic in the middle", []string{"Name", "Manufactures"}},
		{"empty path", nil},
	}
	for _, c := range cases {
		if _, err := ResolvePath(div, c.attrs...); err == nil {
			t.Errorf("%s: accepted %v", c.name, c.attrs)
		}
	}
	if _, err := ResolvePath(s.MustLookup("ProdSET"), "Name"); err == nil {
		t.Error("set-structured root accepted")
	}
	if _, err := ResolvePath(nil, "X"); err == nil {
		t.Error("nil root accepted")
	}
}

func TestPathThroughInheritedAttribute(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	manu := mustTuple(t, s, "MANUFACTURER", nil, []Attribute{{"Location", str}})
	tool := mustTuple(t, s, "TOOL", nil, []Attribute{{"ManufacturedBy", manu}})
	mustTuple(t, s, "LASER_TOOL", []*Type{tool}, nil)
	lt := s.MustLookup("LASER_TOOL")
	p, err := ResolvePath(lt, "ManufacturedBy", "Location")
	if err != nil {
		t.Fatalf("path through inherited attribute rejected: %v", err)
	}
	if p.Step(1).Domain != lt {
		t.Errorf("step 1 domain = %v, want LASER_TOOL", p.Step(1).Domain)
	}
}

func TestRecursivePath(t *testing.T) {
	s, _, err := ParseSchema(`
		type Part is [Name: STRING, Sub: PartSET];
		type PartSET is {Part};
	`)
	if err != nil {
		t.Fatalf("recursive schema rejected: %v", err)
	}
	p, err := ResolvePath(s.MustLookup("Part"), "Sub", "Sub", "Name")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 || p.SetOccurrences() != 2 {
		t.Errorf("recursive path n=%d k=%d, want 3/2", p.Len(), p.SetOccurrences())
	}
}

func TestSharedSegment(t *testing.T) {
	s := companySchema(t)
	div := s.MustLookup("Division")
	p := MustResolvePath(div, "Manufactures", "Composition", "Name")
	q := MustResolvePath(s.MustLookup("Product"), "Composition", "Name")
	pStart, qStart, l, ok := SharedSegment(p, q)
	if !ok || l != 2 || pStart != 1 || qStart != 0 {
		t.Errorf("SharedSegment = (%d,%d,%d,%v), want (1,0,2,true)", pStart, qStart, l, ok)
	}
	// No overlap with a path whose steps differ in domain type: the
	// Division.Name step is not a step of p.
	r := MustResolvePath(div, "Name")
	if _, _, _, ok := SharedSegment(p, r); ok {
		t.Error("unexpected shared segment with Division.Name")
	}
}

func TestSharedSegmentFinalStep(t *testing.T) {
	s := companySchema(t)
	p := MustResolvePath(s.MustLookup("Division"), "Manufactures", "Composition", "Name")
	r := MustResolvePath(s.MustLookup("BasePart"), "Name")
	pStart, qStart, l, ok := SharedSegment(p, r)
	// The final step BasePart.Name is common: domain BasePart, attr Name.
	if !ok || l != 1 || pStart != 2 || qStart != 0 {
		t.Errorf("SharedSegment = (%d,%d,%d,%v), want (2,0,1,true)", pStart, qStart, l, ok)
	}
}
