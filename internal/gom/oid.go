// Package gom implements the Generic Object Model (GOM) of Kemper and
// Moerkotte ("Access Support in Object Bases", SIGMOD 1990, §2): a
// strongly typed object model with object identity, tuple/set/list type
// constructors, multiple inheritance, and path expressions over reference
// chains. It is the substrate on which access support relations
// (package asr) are defined.
//
// Like most embedded storage engines, an ObjectBase and the indexes over
// it are not safe for concurrent use; callers that share one across
// goroutines must serialize access themselves.
package gom

import (
	"fmt"
	"strconv"
)

// OID is a system-generated object identifier. It is invariant for the
// lifetime of an object and never reused within one ObjectBase. The zero
// value NilOID represents the NULL reference (the undefined value of a
// reference attribute).
type OID uint64

// NilOID is the NULL object reference.
const NilOID OID = 0

// IsNil reports whether the OID is the NULL reference.
func (id OID) IsNil() bool { return id == NilOID }

// String renders the identifier in the paper's i_k notation; NilOID
// renders as "NULL".
func (id OID) String() string {
	if id == NilOID {
		return "NULL"
	}
	return "i" + strconv.FormatUint(uint64(id), 10)
}

// GoString implements fmt.GoStringer for readable test failure output.
func (id OID) GoString() string { return fmt.Sprintf("gom.OID(%d)", uint64(id)) }
