package gom

import (
	"testing"
)

// testSchema builds a small company-like schema directly via the API.
func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	str := s.MustLookup("STRING")
	dec := s.MustLookup("DECIMAL")
	part := mustTuple(t, s, "BasePart", nil, []Attribute{{"Name", str}, {"Price", dec}})
	partSet, err := s.DefineSet("BasePartSET", part)
	if err != nil {
		t.Fatal(err)
	}
	mustTuple(t, s, "Product", nil, []Attribute{{"Name", str}, {"Composition", partSet}})
	return s
}

func TestNewObjectInitialization(t *testing.T) {
	s := testSchema(t)
	ob := NewObjectBase(s)

	prod := ob.MustNew(s.MustLookup("Product"))
	v, ok := prod.Attr("Name")
	if !ok || v != nil {
		t.Fatalf("fresh tuple attribute: v=%v ok=%v, want NULL/true", v, ok)
	}
	set := ob.MustNew(s.MustLookup("BasePartSET"))
	if set.Len() != 0 {
		t.Fatalf("fresh set length = %d, want 0", set.Len())
	}
	if _, err := ob.New(s.MustLookup("STRING")); err == nil {
		t.Fatal("instantiating atomic type accepted")
	}
}

func TestOIDsUniqueAndStable(t *testing.T) {
	s := testSchema(t)
	ob := NewObjectBase(s)
	seen := map[OID]bool{}
	for i := 0; i < 100; i++ {
		o := ob.MustNew(s.MustLookup("BasePart"))
		if seen[o.ID()] {
			t.Fatalf("OID %v reused", o.ID())
		}
		seen[o.ID()] = true
	}
	// Deletion must not free identifiers for reuse.
	var del OID
	for id := range seen {
		del = id
		break
	}
	if err := ob.Delete(del); err != nil {
		t.Fatal(err)
	}
	o := ob.MustNew(s.MustLookup("BasePart"))
	if seen[o.ID()] {
		t.Fatalf("OID %v reused after delete", o.ID())
	}
}

func TestSetAttrTypeChecking(t *testing.T) {
	s := testSchema(t)
	ob := NewObjectBase(s)
	prod := ob.MustNew(s.MustLookup("Product"))
	part := ob.MustNew(s.MustLookup("BasePart"))
	set := ob.MustNew(s.MustLookup("BasePartSET"))

	if err := ob.SetAttr(prod.ID(), "Name", String("560 SEC")); err != nil {
		t.Fatal(err)
	}
	if err := ob.SetAttr(prod.ID(), "Name", Integer(5)); err == nil {
		t.Error("INTEGER into STRING attribute accepted")
	}
	if err := ob.SetAttr(prod.ID(), "Composition", Ref(set.ID())); err != nil {
		t.Errorf("valid reference rejected: %v", err)
	}
	if err := ob.SetAttr(prod.ID(), "Composition", Ref(part.ID())); err == nil {
		t.Error("BasePart reference into BasePartSET slot accepted")
	}
	if err := ob.SetAttr(prod.ID(), "Composition", Ref(999)); err == nil {
		t.Error("dangling reference accepted")
	}
	if err := ob.SetAttr(prod.ID(), "Nope", String("x")); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := ob.SetAttr(prod.ID(), "Composition", nil); err != nil {
		t.Errorf("NULL assignment rejected: %v", err)
	}
	if got := prod.AttrOID("Composition"); got != NilOID {
		t.Errorf("after NULL assignment AttrOID = %v", got)
	}
}

func TestSubtypeSubstitutability(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	tool := mustTuple(t, s, "TOOL", nil, []Attribute{{"Function", str}})
	laser := mustTuple(t, s, "LASER_TOOL", []*Type{tool}, []Attribute{{"Wattage", str}})
	arm := mustTuple(t, s, "ARM", nil, []Attribute{{"MountedTool", tool}})

	ob := NewObjectBase(s)
	a := ob.MustNew(arm)
	l := ob.MustNew(laser)
	if err := ob.SetAttr(a.ID(), "MountedTool", Ref(l.ID())); err != nil {
		t.Fatalf("subtype instance rejected in supertype slot: %v", err)
	}
	// The inherited attribute is usable on the subtype instance.
	if err := ob.SetAttr(l.ID(), "Function", String("cutting")); err != nil {
		t.Fatalf("inherited attribute rejected: %v", err)
	}
}

func TestSetSemantics(t *testing.T) {
	s := testSchema(t)
	ob := NewObjectBase(s)
	set := ob.MustNew(s.MustLookup("BasePartSET"))
	p1 := ob.MustNew(s.MustLookup("BasePart"))
	p2 := ob.MustNew(s.MustLookup("BasePart"))

	ob.MustInsertIntoSet(set.ID(), Ref(p1.ID()))
	ob.MustInsertIntoSet(set.ID(), Ref(p1.ID())) // duplicate: no-op
	ob.MustInsertIntoSet(set.ID(), Ref(p2.ID()))
	if set.Len() != 2 {
		t.Fatalf("set length = %d, want 2", set.Len())
	}
	if !set.Contains(Ref(p1.ID())) {
		t.Error("Contains(p1) = false")
	}
	if err := ob.RemoveFromSet(set.ID(), Ref(p1.ID())); err != nil {
		t.Fatal(err)
	}
	if set.Contains(Ref(p1.ID())) || set.Len() != 1 {
		t.Error("remove did not take effect")
	}
	// Removing an absent element is a no-op.
	if err := ob.RemoveFromSet(set.ID(), Ref(p1.ID())); err != nil {
		t.Fatal(err)
	}
	// Element typing enforced.
	prod := ob.MustNew(s.MustLookup("Product"))
	if err := ob.InsertIntoSet(set.ID(), Ref(prod.ID())); err == nil {
		t.Error("Product inserted into BasePartSET")
	}
	if err := ob.InsertIntoSet(set.ID(), nil); err == nil {
		t.Error("NULL inserted into set")
	}
}

func TestExtents(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	base := mustTuple(t, s, "BASE", nil, []Attribute{{"Name", str}})
	sub := mustTuple(t, s, "SUB", []*Type{base}, nil)
	ob := NewObjectBase(s)
	b1 := ob.MustNew(base)
	s1 := ob.MustNew(sub)
	s2 := ob.MustNew(sub)

	if got := ob.Extent(base, false); len(got) != 1 || got[0] != b1.ID() {
		t.Errorf("exact extent = %v", got)
	}
	if got := ob.Extent(base, true); len(got) != 3 {
		t.Errorf("deep extent = %v, want 3 OIDs", got)
	}
	if got := ob.Extent(sub, true); len(got) != 2 || got[0] != s1.ID() || got[1] != s2.ID() {
		t.Errorf("sub extent = %v", got)
	}
	ob.Delete(s1.ID())
	if got := ob.Extent(sub, false); len(got) != 1 {
		t.Errorf("extent after delete = %v", got)
	}
}

func TestVarsAndIntegrity(t *testing.T) {
	s := testSchema(t)
	ob := NewObjectBase(s)
	set := ob.MustNew(s.MustLookup("BasePartSET"))
	if err := ob.BindVar("AllParts", set.ID()); err != nil {
		t.Fatal(err)
	}
	id, ok := ob.Var("AllParts")
	if !ok || id != set.ID() {
		t.Fatalf("Var = %v,%v", id, ok)
	}
	if err := ob.BindVar("Bad", 999); err == nil {
		t.Error("binding to unknown object accepted")
	}

	part := ob.MustNew(s.MustLookup("BasePart"))
	ob.MustInsertIntoSet(set.ID(), Ref(part.ID()))
	if errs := ob.CheckIntegrity(); len(errs) != 0 {
		t.Fatalf("unexpected integrity errors: %v", errs)
	}
	ob.Delete(part.ID())
	if errs := ob.CheckIntegrity(); len(errs) != 1 {
		t.Fatalf("integrity errors = %v, want 1 dangling ref", errs)
	}
}

type recordingObserver struct {
	events []string
}

func (r *recordingObserver) AttrAssigned(o *Object, attr string, old, new Value) {
	r.events = append(r.events, "attr:"+attr)
}
func (r *recordingObserver) SetInserted(set *Object, elem Value) {
	r.events = append(r.events, "ins")
}
func (r *recordingObserver) SetRemoved(set *Object, elem Value) {
	r.events = append(r.events, "rem")
}
func (r *recordingObserver) ObjectDeleted(o *Object) {
	r.events = append(r.events, "del")
}

func TestObserverNotifications(t *testing.T) {
	s := testSchema(t)
	ob := NewObjectBase(s)
	rec := &recordingObserver{}
	ob.AddObserver(rec)

	prod := ob.MustNew(s.MustLookup("Product"))
	set := ob.MustNew(s.MustLookup("BasePartSET"))
	part := ob.MustNew(s.MustLookup("BasePart"))

	ob.MustSetAttr(prod.ID(), "Name", String("X"))
	ob.MustSetAttr(prod.ID(), "Name", String("X")) // unchanged: no event
	ob.MustInsertIntoSet(set.ID(), Ref(part.ID()))
	ob.MustInsertIntoSet(set.ID(), Ref(part.ID())) // duplicate: no event
	ob.RemoveFromSet(set.ID(), Ref(part.ID()))
	ob.Delete(part.ID())

	want := []string{"attr:Name", "ins", "rem", "del"}
	if len(rec.events) != len(want) {
		t.Fatalf("events = %v, want %v", rec.events, want)
	}
	for i := range want {
		if rec.events[i] != want[i] {
			t.Fatalf("events = %v, want %v", rec.events, want)
		}
	}

	ob.RemoveObserver(rec)
	ob.MustSetAttr(prod.ID(), "Name", String("Y"))
	if len(rec.events) != len(want) {
		t.Error("observer still notified after removal")
	}
}

func TestListSemantics(t *testing.T) {
	s := testSchema(t)
	list, err := s.DefineList("PartList", s.MustLookup("BasePart"))
	if err != nil {
		t.Fatal(err)
	}
	ob := NewObjectBase(s)
	l := ob.MustNew(list)
	p1 := ob.MustNew(s.MustLookup("BasePart"))
	p2 := ob.MustNew(s.MustLookup("BasePart"))
	if err := ob.AppendToList(l.ID(), Ref(p1.ID())); err != nil {
		t.Fatal(err)
	}
	if err := ob.AppendToList(l.ID(), Ref(p2.ID())); err != nil {
		t.Fatal(err)
	}
	if err := ob.AppendToList(l.ID(), Ref(p1.ID())); err != nil {
		t.Fatal(err) // lists admit duplicates
	}
	if l.Len() != 3 {
		t.Fatalf("list length = %d, want 3", l.Len())
	}
	ids := l.ElementOIDs()
	if len(ids) != 3 || ids[0] != p1.ID() || ids[1] != p2.ID() || ids[2] != p1.ID() {
		t.Errorf("list order wrong: %v", ids)
	}
}
