package gom

import (
	"fmt"
	"sort"
)

// TypeKind classifies a GOM type by its outer type constructor (§2.1).
type TypeKind int

// The four type kinds: built-in elementary value types, tuple-structured
// types ([]), set-structured types ({}), and list-structured types (<>).
const (
	AtomicType TypeKind = iota
	TupleType
	SetType
	ListType
)

// String returns a readable kind name.
func (k TypeKind) String() string {
	switch k {
	case AtomicType:
		return "atomic"
	case TupleType:
		return "tuple"
	case SetType:
		return "set"
	case ListType:
		return "list"
	default:
		return fmt.Sprintf("TypeKind(%d)", int(k))
	}
}

// Attribute is a named, typed component of a tuple-structured type.
type Attribute struct {
	Name string
	Type *Type
}

// Type describes a GOM type. Types are interned per Schema: two *Type
// values from the same Schema are identical iff they are pointer-equal.
type Type struct {
	name   string
	kind   TypeKind
	atomic AtomicKind // valid when kind == AtomicType

	// Tuple types.
	supertypes []*Type
	ownAttrs   []Attribute // declared attributes, in declaration order
	allAttrs   []Attribute // own + inherited, resolved on freeze
	attrIndex  map[string]int

	// Set and list types.
	elem *Type

	schema *Schema
}

// Name returns the type's declared name.
func (t *Type) Name() string { return t.name }

// Kind returns the type's outer constructor.
func (t *Type) Kind() TypeKind { return t.kind }

// AtomicKind returns the elementary kind of an atomic type, and
// KindInvalid for constructed types.
func (t *Type) AtomicKind() AtomicKind {
	if t.kind != AtomicType {
		return KindInvalid
	}
	return t.atomic
}

// Elem returns the element type of a set or list type, or nil.
func (t *Type) Elem() *Type { return t.elem }

// Supertypes returns the direct supertypes of a tuple type.
func (t *Type) Supertypes() []*Type { return t.supertypes }

// OwnAttributes returns the attributes declared directly on t.
func (t *Type) OwnAttributes() []Attribute { return t.ownAttrs }

// Attributes returns all attributes of a tuple type including inherited
// ones, supertype attributes first, in a deterministic order.
func (t *Type) Attributes() []Attribute { return t.allAttrs }

// Attribute looks up an (own or inherited) attribute by name.
func (t *Type) Attribute(name string) (Attribute, bool) {
	if t.attrIndex == nil {
		return Attribute{}, false
	}
	i, ok := t.attrIndex[name]
	if !ok {
		return Attribute{}, false
	}
	return t.allAttrs[i], true
}

// IsSubtypeOf reports whether t is s or a (transitive) subtype of s.
// Subtyping is defined only between tuple types; every type is a subtype
// of itself.
func (t *Type) IsSubtypeOf(s *Type) bool {
	if t == s {
		return true
	}
	for _, sup := range t.supertypes {
		if sup.IsSubtypeOf(s) {
			return true
		}
	}
	return false
}

// AcceptsValue reports whether a value v may be stored in a slot
// constrained to type t: NULL is accepted everywhere, atomic values must
// match the atomic kind exactly, and references must denote an instance
// of t or a subtype of t (strong typing with substitutability, §2). The
// reference check requires the owning ObjectBase, so it is performed by
// ObjectBase; here a Ref is accepted structurally when t is constructed.
func (t *Type) AcceptsValue(v Value) bool {
	if v == nil {
		return true
	}
	if t.kind == AtomicType {
		return v.Kind() == t.atomic
	}
	return v.Kind() == KindRef
}

// String returns the type name.
func (t *Type) String() string { return t.name }

// Definition renders the type in the paper's declaration syntax.
func (t *Type) Definition() string {
	switch t.kind {
	case AtomicType:
		return fmt.Sprintf("type %s is built-in", t.name)
	case SetType:
		return fmt.Sprintf("type %s is {%s};", t.name, t.elem.name)
	case ListType:
		return fmt.Sprintf("type %s is <%s>;", t.name, t.elem.name)
	case TupleType:
		s := "type " + t.name + " is "
		if len(t.supertypes) > 0 {
			s += "supertypes ("
			for i, sup := range t.supertypes {
				if i > 0 {
					s += ", "
				}
				s += sup.name
			}
			s += ") "
		}
		s += "["
		for i, a := range t.ownAttrs {
			if i > 0 {
				s += ", "
			}
			s += a.Name + ": " + a.Type.name
		}
		return s + "];"
	default:
		return "type " + t.name
	}
}

// Schema is a registry of GOM type definitions. The built-in elementary
// types STRING, INTEGER, DECIMAL, BOOL and CHAR are predefined.
type Schema struct {
	types map[string]*Type
	order []string // declaration order for deterministic iteration
}

// NewSchema creates a schema containing only the built-in atomic types.
func NewSchema() *Schema {
	s := &Schema{types: make(map[string]*Type)}
	for _, b := range []struct {
		name string
		kind AtomicKind
	}{
		{"STRING", KindString},
		{"INTEGER", KindInteger},
		{"DECIMAL", KindDecimal},
		{"BOOL", KindBool},
		{"CHAR", KindChar},
	} {
		t := &Type{name: b.name, kind: AtomicType, atomic: b.kind, schema: s}
		s.types[b.name] = t
		s.order = append(s.order, b.name)
	}
	return s
}

// Lookup returns the type with the given name.
func (s *Schema) Lookup(name string) (*Type, bool) {
	t, ok := s.types[name]
	return t, ok
}

// MustLookup returns the named type or panics; intended for tests and
// examples where the schema is static.
func (s *Schema) MustLookup(name string) *Type {
	t, ok := s.types[name]
	if !ok {
		panic(fmt.Sprintf("gom: unknown type %q", name))
	}
	return t
}

// Types returns all types in declaration order (built-ins first).
func (s *Schema) Types() []*Type {
	out := make([]*Type, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.types[n])
	}
	return out
}

func (s *Schema) register(t *Type) error {
	if t.name == "" {
		return fmt.Errorf("gom: type name must not be empty")
	}
	if t.name == "ANY" {
		return fmt.Errorf("gom: type name ANY is reserved (§2.1)")
	}
	if _, dup := s.types[t.name]; dup {
		return fmt.Errorf("gom: type %q already defined", t.name)
	}
	t.schema = s
	s.types[t.name] = t
	s.order = append(s.order, t.name)
	return nil
}

// DefineTuple declares a tuple-structured type with the given direct
// supertypes and own attributes (§2.1). Attribute names must be pairwise
// distinct across the full inherited attribute set, except that an
// attribute inherited identically via several supertypes (diamond
// inheritance) is admitted once.
func (s *Schema) DefineTuple(name string, supertypes []*Type, attrs []Attribute) (*Type, error) {
	for _, sup := range supertypes {
		if sup == nil {
			return nil, fmt.Errorf("gom: type %q: nil supertype", name)
		}
		if sup.kind != TupleType {
			return nil, fmt.Errorf("gom: type %q: supertype %q is not tuple-structured", name, sup.name)
		}
		if sup.schema != s {
			return nil, fmt.Errorf("gom: type %q: supertype %q belongs to a different schema", name, sup.name)
		}
	}
	t := &Type{
		name:       name,
		kind:       TupleType,
		supertypes: append([]*Type(nil), supertypes...),
		ownAttrs:   append([]Attribute(nil), attrs...),
	}
	if err := t.resolveAttributes(); err != nil {
		return nil, err
	}
	if err := s.register(t); err != nil {
		return nil, err
	}
	return t, nil
}

// resolveAttributes computes the full attribute set (inherited first) and
// checks the pairwise-distinctness requirement of §2.1.
func (t *Type) resolveAttributes() error {
	t.attrIndex = make(map[string]int)
	t.allAttrs = nil
	add := func(a Attribute, origin string) error {
		if a.Name == "" {
			return fmt.Errorf("gom: type %q: empty attribute name", t.name)
		}
		if a.Type == nil {
			return fmt.Errorf("gom: type %q: attribute %q has nil type", t.name, a.Name)
		}
		if i, dup := t.attrIndex[a.Name]; dup {
			if t.allAttrs[i].Type == a.Type && origin == "inherited" {
				return nil // diamond inheritance of the same attribute
			}
			return fmt.Errorf("gom: type %q: duplicate attribute %q", t.name, a.Name)
		}
		t.attrIndex[a.Name] = len(t.allAttrs)
		t.allAttrs = append(t.allAttrs, a)
		return nil
	}
	for _, sup := range t.supertypes {
		for _, a := range sup.allAttrs {
			if err := add(a, "inherited"); err != nil {
				return err
			}
		}
	}
	for _, a := range t.ownAttrs {
		if err := add(a, "own"); err != nil {
			return err
		}
	}
	return nil
}

// DefineSet declares a set-structured type {elem} (§2.1). Powersets —
// sets of sets — are rejected, matching the paper's footnote to Def. 3.1.
func (s *Schema) DefineSet(name string, elem *Type) (*Type, error) {
	if elem == nil {
		return nil, fmt.Errorf("gom: set type %q: nil element type", name)
	}
	if elem.kind == SetType {
		return nil, fmt.Errorf("gom: set type %q: powersets are not permitted", name)
	}
	t := &Type{name: name, kind: SetType, elem: elem}
	if err := s.register(t); err != nil {
		return nil, err
	}
	return t, nil
}

// DefineList declares a list-structured type <elem> (§2.1).
func (s *Schema) DefineList(name string, elem *Type) (*Type, error) {
	if elem == nil {
		return nil, fmt.Errorf("gom: list type %q: nil element type", name)
	}
	t := &Type{name: name, kind: ListType, elem: elem}
	if err := s.register(t); err != nil {
		return nil, err
	}
	return t, nil
}

// TupleTypes returns all tuple-structured types sorted by name; useful
// for deterministic schema dumps.
func (s *Schema) TupleTypes() []*Type {
	var out []*Type
	for _, t := range s.types {
		if t.kind == TupleType {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
