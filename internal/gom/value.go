package gom

import (
	"fmt"
	"strconv"
	"unicode/utf8"
)

// Value is the interface satisfied by everything that may be stored in an
// attribute, set, or list: atomic values (which have no identity — their
// value is their identity, §2) and references to objects. The NULL value
// is represented by a nil Value.
type Value interface {
	// Kind reports the value's atomic kind, or KindRef for references.
	Kind() AtomicKind
	// Equal reports value equality. References are equal iff they denote
	// the same object.
	Equal(Value) bool
	fmt.Stringer
}

// AtomicKind enumerates the built-in elementary types of GOM plus the
// reference pseudo-kind.
type AtomicKind int

// Atomic kinds. KindRef marks object references, which are not atomic but
// share the Value interface.
const (
	KindInvalid AtomicKind = iota
	KindString
	KindInteger
	KindDecimal
	KindBool
	KindChar
	KindRef
)

// String returns the GOM name of the atomic kind.
func (k AtomicKind) String() string {
	switch k {
	case KindString:
		return "STRING"
	case KindInteger:
		return "INTEGER"
	case KindDecimal:
		return "DECIMAL"
	case KindBool:
		return "BOOL"
	case KindChar:
		return "CHAR"
	case KindRef:
		return "REF"
	default:
		return "INVALID"
	}
}

// String is the GOM STRING elementary type.
type String string

// Integer is the GOM INTEGER elementary type.
type Integer int64

// Decimal is the GOM DECIMAL elementary type.
type Decimal float64

// Bool is the GOM BOOL elementary type.
type Bool bool

// Char is the GOM CHAR elementary type.
type Char rune

// Ref is a reference to an object, identified by its OID. A Ref carrying
// NilOID is distinct from the NULL value: use a nil Value for NULL.
type Ref OID

// Kind implements Value.
func (String) Kind() AtomicKind { return KindString }

// Kind implements Value.
func (Integer) Kind() AtomicKind { return KindInteger }

// Kind implements Value.
func (Decimal) Kind() AtomicKind { return KindDecimal }

// Kind implements Value.
func (Bool) Kind() AtomicKind { return KindBool }

// Kind implements Value.
func (Char) Kind() AtomicKind { return KindChar }

// Kind implements Value.
func (Ref) Kind() AtomicKind { return KindRef }

// Equal implements Value.
func (v String) Equal(o Value) bool { w, ok := o.(String); return ok && v == w }

// Equal implements Value.
func (v Integer) Equal(o Value) bool { w, ok := o.(Integer); return ok && v == w }

// Equal implements Value.
func (v Decimal) Equal(o Value) bool { w, ok := o.(Decimal); return ok && v == w }

// Equal implements Value.
func (v Bool) Equal(o Value) bool { w, ok := o.(Bool); return ok && v == w }

// Equal implements Value.
func (v Char) Equal(o Value) bool { w, ok := o.(Char); return ok && v == w }

// Equal implements Value.
func (v Ref) Equal(o Value) bool { w, ok := o.(Ref); return ok && v == w }

// String implements fmt.Stringer.
func (v String) String() string { return strconv.Quote(string(v)) }

// String implements fmt.Stringer.
func (v Integer) String() string { return strconv.FormatInt(int64(v), 10) }

// String implements fmt.Stringer.
func (v Decimal) String() string { return strconv.FormatFloat(float64(v), 'g', -1, 64) }

// String implements fmt.Stringer.
func (v Bool) String() string { return strconv.FormatBool(bool(v)) }

// String implements fmt.Stringer.
func (v Char) String() string { return "'" + string(rune(v)) + "'" }

// String implements fmt.Stringer.
func (v Ref) String() string { return OID(v).String() }

// OID returns the referenced object identifier.
func (v Ref) OID() OID { return OID(v) }

// IsNull reports whether v is the NULL value (a nil Value).
func IsNull(v Value) bool { return v == nil }

// ValuesEqual compares two possibly-NULL values. Two NULLs compare equal
// here (this is identity of representation, not SQL three-valued logic).
func ValuesEqual(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Equal(b)
}

// ValueString renders a possibly-NULL value.
func ValueString(v Value) string {
	if v == nil {
		return "NULL"
	}
	return v.String()
}

// AppendValueString appends ValueString(v) to dst and returns the
// extended slice — the allocation-free form used by hot paths (tuple
// hash keys in joins) that would otherwise build one string per value
// per row. The rendering is byte-identical to ValueString.
func AppendValueString(dst []byte, v Value) []byte {
	switch w := v.(type) {
	case nil:
		return append(dst, "NULL"...)
	case String:
		return strconv.AppendQuote(dst, string(w))
	case Integer:
		return strconv.AppendInt(dst, int64(w), 10)
	case Decimal:
		return strconv.AppendFloat(dst, float64(w), 'g', -1, 64)
	case Bool:
		return strconv.AppendBool(dst, bool(w))
	case Char:
		dst = append(dst, '\'')
		dst = utf8.AppendRune(dst, rune(w))
		return append(dst, '\'')
	case Ref:
		if OID(w) == NilOID {
			return append(dst, "NULL"...)
		}
		dst = append(dst, 'i')
		return strconv.AppendUint(dst, uint64(w), 10)
	default:
		return append(dst, ValueString(v)...)
	}
}
