package gom

import (
	"fmt"
	"sort"
	"sync"
)

// Observer receives change notifications from an ObjectBase. Access
// support relation managers register as observers to maintain their
// extensions incrementally under object updates (§6).
//
// Observers are invoked after the base's write lock has been released,
// so an observer may freely read the object base (and its own indexes)
// from inside a callback. With a single logical writer — the
// concurrency model this repository targets, see docs/CONCURRENCY.md —
// callbacks therefore always observe the post-update state. Concurrent
// writers are serialized on the base itself, but their notification
// order is then unspecified.
type Observer interface {
	// AttrAssigned is called after attribute attr of object o changed
	// from old to new (either may be NULL).
	AttrAssigned(o *Object, attr string, old, new Value)
	// SetInserted is called after elem was inserted into set object set.
	SetInserted(set *Object, elem Value)
	// SetRemoved is called after elem was removed from set object set.
	SetRemoved(set *Object, elem Value)
	// ObjectDeleted is called after object o was removed from the base.
	ObjectDeleted(o *Object)
}

// ObjectBase is a GOM object store: it instantiates types (§2,
// "instantiation"), enforces strong typing on every mutation, maintains
// per-type extents, and publishes updates to observers. References are
// uni-directional, exactly as in the paper — there are no reverse
// pointers in the object representation; backward traversal without an
// access support relation therefore requires exhaustive search.
//
// An ObjectBase is safe for concurrent use under a readers/writer
// discipline: any number of goroutines may call the read-only methods
// (Get, Extent, Var, Count, CheckIntegrity, and every Object accessor)
// concurrently with each other and with at most one mutating goroutine.
// Mutations (New, SetAttr, InsertIntoSet, RemoveFromSet, AppendToList,
// Delete, BindVar, AddObserver, RemoveObserver) take the write lock and
// are internally serialized; observer callbacks run after the lock is
// released.
type ObjectBase struct {
	mu        sync.RWMutex
	schema    *Schema
	objects   map[OID]*Object
	extents   map[*Type][]OID // exact-type extents, in creation order
	vars      map[string]OID  // named roots, e.g. "OurRobots"
	nextOID   OID
	observers []Observer
}

// NewObjectBase creates an empty object base over the given schema.
func NewObjectBase(schema *Schema) *ObjectBase {
	return &ObjectBase{
		schema:  schema,
		objects: make(map[OID]*Object),
		extents: make(map[*Type][]OID),
		vars:    make(map[string]OID),
		nextOID: 1,
	}
}

// Schema returns the schema the base was created over.
func (ob *ObjectBase) Schema() *Schema { return ob.schema }

// AddObserver registers an update observer.
func (ob *ObjectBase) AddObserver(obs Observer) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	ob.observers = append(ob.observers, obs)
}

// RemoveObserver unregisters a previously added observer.
func (ob *ObjectBase) RemoveObserver(obs Observer) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	for i, o := range ob.observers {
		if o == obs {
			ob.observers = append(ob.observers[:i], ob.observers[i+1:]...)
			return
		}
	}
}

// watchers snapshots the observer list; must be called with ob.mu held.
func (ob *ObjectBase) watchers() []Observer {
	if len(ob.observers) == 0 {
		return nil
	}
	return append([]Observer(nil), ob.observers...)
}

// New instantiates the given type: tuple attributes start NULL, sets and
// lists start empty (§2, "instantiation"). Atomic types have no object
// instances and are rejected.
func (ob *ObjectBase) New(t *Type) (*Object, error) {
	if t == nil {
		return nil, fmt.Errorf("gom: New: nil type")
	}
	if t.schema != ob.schema {
		return nil, fmt.Errorf("gom: New: type %q belongs to a different schema", t.Name())
	}
	if t.Kind() == AtomicType {
		return nil, fmt.Errorf("gom: New: atomic type %q cannot be instantiated", t.Name())
	}
	ob.mu.Lock()
	defer ob.mu.Unlock()
	o := &Object{id: ob.nextOID, typ: t, base: ob}
	ob.nextOID++
	switch t.Kind() {
	case TupleType:
		o.attrs = make(map[string]Value)
	case SetType:
		o.set = make(map[string]Value)
	}
	ob.objects[o.id] = o
	ob.extents[t] = append(ob.extents[t], o.id)
	return o, nil
}

// MustNew is New panicking on error; for tests and examples.
func (ob *ObjectBase) MustNew(t *Type) *Object {
	o, err := ob.New(t)
	if err != nil {
		panic(err)
	}
	return o
}

// Get returns the object with the given OID.
func (ob *ObjectBase) Get(id OID) (*Object, bool) {
	ob.mu.RLock()
	defer ob.mu.RUnlock()
	o, ok := ob.objects[id]
	return o, ok
}

// Count returns the number of live objects.
func (ob *ObjectBase) Count() int {
	ob.mu.RLock()
	defer ob.mu.RUnlock()
	return len(ob.objects)
}

// Extent returns the OIDs of all instances whose exact type is t, or —
// with includeSubtypes — of t and all its subtypes, in creation order.
func (ob *ObjectBase) Extent(t *Type, includeSubtypes bool) []OID {
	ob.mu.RLock()
	defer ob.mu.RUnlock()
	if !includeSubtypes {
		return append([]OID(nil), ob.extents[t]...)
	}
	var out []OID
	for et, ids := range ob.extents {
		if et.IsSubtypeOf(t) {
			out = append(out, ids...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BindVar binds a database variable name (e.g. "OurRobots" or
// "Mercedes") to an object.
func (ob *ObjectBase) BindVar(name string, id OID) error {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	if _, ok := ob.objects[id]; !ok && !id.IsNil() {
		return fmt.Errorf("gom: BindVar(%q): unknown object %s", name, id)
	}
	ob.vars[name] = id
	return nil
}

// Var resolves a bound database variable.
func (ob *ObjectBase) Var(name string) (OID, bool) {
	ob.mu.RLock()
	defer ob.mu.RUnlock()
	id, ok := ob.vars[name]
	return id, ok
}

// VarNames returns the bound database variable names, sorted.
func (ob *ObjectBase) VarNames() []string {
	ob.mu.RLock()
	defer ob.mu.RUnlock()
	out := make([]string, 0, len(ob.vars))
	for name := range ob.vars {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// checkAssignable validates that v may be stored in a slot constrained to
// type want: NULL always may; atomic kinds must match; references must
// denote a live instance of want or a subtype (the constrained type is
// only an upper bound, §2 "strong typing"). Must be called with ob.mu
// held (read or write).
func (ob *ObjectBase) checkAssignable(want *Type, v Value) error {
	if v == nil {
		return nil
	}
	if r, ok := v.(Ref); ok {
		if want.Kind() == AtomicType {
			return fmt.Errorf("gom: cannot store reference in %s slot", want.Name())
		}
		target, live := ob.objects[r.OID()]
		if !live {
			return fmt.Errorf("gom: dangling reference %s", r.OID())
		}
		if !target.typ.IsSubtypeOf(want) {
			return fmt.Errorf("gom: %s has type %s, not a subtype of %s",
				r.OID(), target.typ.Name(), want.Name())
		}
		return nil
	}
	if want.Kind() != AtomicType {
		return fmt.Errorf("gom: cannot store %s value in %s slot", v.Kind(), want.Name())
	}
	if v.Kind() != want.AtomicKind() {
		return fmt.Errorf("gom: cannot store %s value in %s slot", v.Kind(), want.Name())
	}
	return nil
}

// SetAttr assigns attribute attr of tuple object id to v (NULL when v is
// nil) and notifies observers.
func (ob *ObjectBase) SetAttr(id OID, attr string, v Value) error {
	ob.mu.Lock()
	o, ok := ob.objects[id]
	if !ok {
		ob.mu.Unlock()
		return fmt.Errorf("gom: SetAttr: unknown object %s", id)
	}
	if o.typ.Kind() != TupleType {
		ob.mu.Unlock()
		return fmt.Errorf("gom: SetAttr: %s is %s-structured, not a tuple", id, o.typ.Kind())
	}
	a, ok := o.typ.Attribute(attr)
	if !ok {
		ob.mu.Unlock()
		return fmt.Errorf("gom: SetAttr: type %s has no attribute %q", o.typ.Name(), attr)
	}
	if err := ob.checkAssignable(a.Type, v); err != nil {
		ob.mu.Unlock()
		return fmt.Errorf("gom: SetAttr %s.%s: %w", o.typ.Name(), attr, err)
	}
	old := o.attrs[attr]
	if v == nil {
		delete(o.attrs, attr)
	} else {
		o.attrs[attr] = v
	}
	changed := !ValuesEqual(old, v)
	var obs []Observer
	if changed {
		obs = ob.watchers()
	}
	ob.mu.Unlock()
	for _, w := range obs {
		w.AttrAssigned(o, attr, old, v)
	}
	return nil
}

// MustSetAttr is SetAttr panicking on error.
func (ob *ObjectBase) MustSetAttr(id OID, attr string, v Value) {
	if err := ob.SetAttr(id, attr, v); err != nil {
		panic(err)
	}
}

// InsertIntoSet inserts v into set object id (a no-op if already
// present) and notifies observers. This is the paper's characteristic
// update operation ins_i of §6.
func (ob *ObjectBase) InsertIntoSet(id OID, v Value) error {
	ob.mu.Lock()
	o, ok := ob.objects[id]
	if !ok {
		ob.mu.Unlock()
		return fmt.Errorf("gom: InsertIntoSet: unknown object %s", id)
	}
	if o.typ.Kind() != SetType {
		ob.mu.Unlock()
		return fmt.Errorf("gom: InsertIntoSet: %s is %s-structured, not a set", id, o.typ.Kind())
	}
	if v == nil {
		ob.mu.Unlock()
		return fmt.Errorf("gom: InsertIntoSet: cannot insert NULL into a set")
	}
	if err := ob.checkAssignable(o.typ.Elem(), v); err != nil {
		ob.mu.Unlock()
		return fmt.Errorf("gom: InsertIntoSet into %s: %w", o.typ.Name(), err)
	}
	k := valueKey(v)
	if _, dup := o.set[k]; dup {
		ob.mu.Unlock()
		return nil
	}
	o.set[k] = v
	obs := ob.watchers()
	ob.mu.Unlock()
	for _, w := range obs {
		w.SetInserted(o, v)
	}
	return nil
}

// MustInsertIntoSet is InsertIntoSet panicking on error.
func (ob *ObjectBase) MustInsertIntoSet(id OID, v Value) {
	if err := ob.InsertIntoSet(id, v); err != nil {
		panic(err)
	}
}

// RemoveFromSet removes v from set object id (a no-op if absent) and
// notifies observers.
func (ob *ObjectBase) RemoveFromSet(id OID, v Value) error {
	ob.mu.Lock()
	o, ok := ob.objects[id]
	if !ok {
		ob.mu.Unlock()
		return fmt.Errorf("gom: RemoveFromSet: unknown object %s", id)
	}
	if o.typ.Kind() != SetType {
		ob.mu.Unlock()
		return fmt.Errorf("gom: RemoveFromSet: %s is %s-structured, not a set", id, o.typ.Kind())
	}
	k := valueKey(v)
	if _, present := o.set[k]; !present {
		ob.mu.Unlock()
		return nil
	}
	delete(o.set, k)
	obs := ob.watchers()
	ob.mu.Unlock()
	for _, w := range obs {
		w.SetRemoved(o, v)
	}
	return nil
}

// AppendToList appends v to list object id.
func (ob *ObjectBase) AppendToList(id OID, v Value) error {
	ob.mu.Lock()
	o, ok := ob.objects[id]
	if !ok {
		ob.mu.Unlock()
		return fmt.Errorf("gom: AppendToList: unknown object %s", id)
	}
	if o.typ.Kind() != ListType {
		ob.mu.Unlock()
		return fmt.Errorf("gom: AppendToList: %s is %s-structured, not a list", id, o.typ.Kind())
	}
	if err := ob.checkAssignable(o.typ.Elem(), v); err != nil {
		ob.mu.Unlock()
		return fmt.Errorf("gom: AppendToList into %s: %w", o.typ.Name(), err)
	}
	o.list = append(o.list, v)
	obs := ob.watchers()
	ob.mu.Unlock()
	// List insertion is reported through the set-insertion hook: access
	// support over ordered collections is analogous to sets (§2.1).
	for _, w := range obs {
		w.SetInserted(o, v)
	}
	return nil
}

// Delete removes an object from the base. Incoming references become
// dangling; since GOM references are uni-directional the base cannot
// find them cheaply — callers that need referential integrity should
// clear referrers first (CheckIntegrity finds violations).
func (ob *ObjectBase) Delete(id OID) error {
	ob.mu.Lock()
	o, ok := ob.objects[id]
	if !ok {
		ob.mu.Unlock()
		return fmt.Errorf("gom: Delete: unknown object %s", id)
	}
	delete(ob.objects, id)
	ext := ob.extents[o.typ]
	for i, e := range ext {
		if e == id {
			ob.extents[o.typ] = append(ext[:i], ext[i+1:]...)
			break
		}
	}
	obs := ob.watchers()
	ob.mu.Unlock()
	for _, w := range obs {
		w.ObjectDeleted(o)
	}
	return nil
}

// CheckIntegrity scans the whole base and returns every dangling
// reference as an error slice (empty means consistent).
func (ob *ObjectBase) CheckIntegrity() []error {
	ob.mu.RLock()
	defer ob.mu.RUnlock()
	var errs []error
	check := func(where string, v Value) {
		r, ok := v.(Ref)
		if !ok {
			return
		}
		if _, live := ob.objects[r.OID()]; !live {
			errs = append(errs, fmt.Errorf("gom: dangling reference %s at %s", r.OID(), where))
		}
	}
	ids := make([]OID, 0, len(ob.objects))
	for id := range ob.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := ob.objects[id]
		switch o.typ.Kind() {
		case TupleType:
			for name, v := range o.attrs {
				check(fmt.Sprintf("%s.%s", id, name), v)
			}
		case SetType, ListType:
			for _, v := range o.elementsLocked() {
				check(fmt.Sprintf("%s element", id), v)
			}
		}
	}
	return errs
}
