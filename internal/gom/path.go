package gom

import (
	"fmt"
	"strings"
)

// PathStep is one resolved attribute step A_i of a path expression
// t_0.A_1.….A_n (Definition 3.1). For a single-valued attribute the step
// leads directly from Domain (t_{i-1}) to Range (t_i). For a set-valued
// attribute — a "set occurrence at A_i" — the attribute leads from Domain
// to Set (the set type t'_i), whose elements have type Range.
type PathStep struct {
	Attr   string
	Domain *Type // t_{i-1}: domain type of A_i
	Set    *Type // t'_i when A_i is set-valued, else nil
	Range  *Type // t_i: range type of A_i
}

// IsSetOccurrence reports whether this step traverses a set-valued
// attribute.
func (s PathStep) IsSetOccurrence() bool { return s.Set != nil }

// PathExpression is a validated path expression t_0.A_1.….A_n
// (Definition 3.1). Len (= n) is the number of attribute steps;
// SetOccurrences (= k in Definition 3.2) counts steps through set-valued
// attributes; the underlying access support relation has arity n+k+1.
type PathExpression struct {
	root  *Type
	steps []PathStep
}

// ResolvePath validates attrs as a path expression anchored at root,
// checking each step against Definition 3.1: A_i must be an attribute of
// t_{i-1} (possibly inherited) whose type is either a tuple/atomic type
// (single-valued step) or a set type (set occurrence). Lists are handled
// like sets (§2.1). The final attribute may be atomic (as in
// Division.Manufactures.Composition.Name); intermediate attributes must
// lead to further objects.
func ResolvePath(root *Type, attrs ...string) (*PathExpression, error) {
	if root == nil {
		return nil, fmt.Errorf("gom: path: nil root type")
	}
	if root.Kind() != TupleType {
		return nil, fmt.Errorf("gom: path: root type %s is %s-structured, want tuple", root.Name(), root.Kind())
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("gom: path: at least one attribute required")
	}
	cur := root
	steps := make([]PathStep, 0, len(attrs))
	for i, name := range attrs {
		if cur.Kind() != TupleType {
			return nil, fmt.Errorf("gom: path %s: step %d (%s): domain %s is %s-structured, want tuple",
				pathString(root, attrs), i+1, name, cur.Name(), cur.Kind())
		}
		a, ok := cur.Attribute(name)
		if !ok {
			return nil, fmt.Errorf("gom: path %s: type %s has no attribute %q",
				pathString(root, attrs), cur.Name(), name)
		}
		step := PathStep{Attr: name, Domain: cur}
		switch a.Type.Kind() {
		case SetType, ListType:
			step.Set = a.Type
			step.Range = a.Type.Elem()
		default:
			step.Range = a.Type
		}
		if i < len(attrs)-1 && step.Range.Kind() == AtomicType {
			return nil, fmt.Errorf("gom: path %s: intermediate attribute %s.%s is atomic (%s)",
				pathString(root, attrs), cur.Name(), name, step.Range.Name())
		}
		steps = append(steps, step)
		cur = step.Range
	}
	return &PathExpression{root: root, steps: steps}, nil
}

// MustResolvePath is ResolvePath panicking on error.
func MustResolvePath(root *Type, attrs ...string) *PathExpression {
	p, err := ResolvePath(root, attrs...)
	if err != nil {
		panic(err)
	}
	return p
}

// Root returns the anchor type t_0.
func (p *PathExpression) Root() *Type { return p.root }

// Len returns n, the number of attribute steps.
func (p *PathExpression) Len() int { return len(p.steps) }

// Steps returns the resolved steps A_1 … A_n.
func (p *PathExpression) Steps() []PathStep { return append([]PathStep(nil), p.steps...) }

// Step returns step A_i for 1 ≤ i ≤ n.
func (p *PathExpression) Step(i int) PathStep { return p.steps[i-1] }

// IsLinear reports whether the path contains no set occurrence
// (Definition 3.1: a linear path).
func (p *PathExpression) IsLinear() bool { return p.SetOccurrences() == 0 }

// SetOccurrences returns k, the number of set occurrences in the path
// (Definition 3.2).
func (p *PathExpression) SetOccurrences() int {
	k := 0
	for _, s := range p.steps {
		if s.IsSetOccurrence() {
			k++
		}
	}
	return k
}

// Arity returns n+k+1, the column count of the access support relation
// over this path, including set-object identifier columns (Def. 3.2).
func (p *PathExpression) Arity() int { return p.Len() + p.SetOccurrences() + 1 }

// ColumnTypes returns the n+k+1 column types S_0 … S_{n+k}: t_0, then for
// every step the set type (if a set occurrence) followed by the range
// type (Definition 3.2).
func (p *PathExpression) ColumnTypes() []*Type {
	cols := []*Type{p.root}
	for _, s := range p.steps {
		if s.IsSetOccurrence() {
			cols = append(cols, s.Set)
		}
		cols = append(cols, s.Range)
	}
	return cols
}

// ColumnNames returns readable names for the n+k+1 columns, in the style
// of the paper's table headers (OID_Division, VALUE_Name, …).
func (p *PathExpression) ColumnNames() []string {
	types := p.ColumnTypes()
	names := make([]string, len(types))
	for i, t := range types {
		prefix := "OID"
		if t.Kind() == AtomicType {
			prefix = "VALUE"
		}
		names[i] = prefix + "_" + t.Name()
	}
	// The last column is named after the final attribute when atomic.
	if last := p.steps[len(p.steps)-1]; last.Range.Kind() == AtomicType {
		names[len(names)-1] = "VALUE_" + last.Attr
	}
	return names
}

// ObjectColumn maps step index i (0 ≤ i ≤ n, where 0 is the anchor) to
// the relation column holding OIDs of t_i objects — i + k(i) in the
// paper's notation, where k(i) counts set occurrences at A_j for j ≤ i.
// Set-object identifier columns sit between ObjectColumn(i-1) and
// ObjectColumn(i) for set occurrences at A_i.
func (p *PathExpression) ObjectColumn(i int) int {
	col := 0
	for j := 0; j < i; j++ {
		if p.steps[j].IsSetOccurrence() {
			col++
		}
		col++
	}
	return col
}

// StepOfColumn is the inverse of ObjectColumn: it returns (i, isSetCol)
// where column col holds OIDs of t_i objects, or — when isSetCol — set
// objects t'_i of the set occurrence at A_i.
func (p *PathExpression) StepOfColumn(col int) (int, bool) {
	c := 0
	if col == 0 {
		return 0, false
	}
	for i, s := range p.steps {
		if s.IsSetOccurrence() {
			c++
			if c == col {
				return i + 1, true
			}
		}
		c++
		if c == col {
			return i + 1, false
		}
	}
	panic(fmt.Sprintf("gom: StepOfColumn(%d): out of range for arity %d", col, p.Arity()))
}

// String renders the path in dot notation, t_0.A_1.….A_n.
func (p *PathExpression) String() string {
	attrs := make([]string, len(p.steps))
	for i, s := range p.steps {
		attrs[i] = s.Attr
	}
	return pathString(p.root, attrs)
}

func pathString(root *Type, attrs []string) string {
	return root.Name() + "." + strings.Join(attrs, ".")
}

// SharedSegment locates the longest common infix of two paths for access
// support relation sharing (§5.4): it returns the step ranges [i, i+j]
// of p and [i', i'+j] of q such that steps A_{i+1}..A_{i+j} of p and
// A_{i'+1}..A_{i'+j} of q traverse identical attributes with identical
// domain and range types. ok is false when no common segment of length
// ≥ 1 exists.
func SharedSegment(p, q *PathExpression) (pStart, qStart, length int, ok bool) {
	best := 0
	for i := 0; i <= p.Len(); i++ {
		for i2 := 0; i2 <= q.Len(); i2++ {
			l := 0
			for i+l < p.Len() && i2+l < q.Len() && sameStep(p.steps[i+l], q.steps[i2+l]) {
				l++
			}
			if l > best {
				best, pStart, qStart = l, i, i2
			}
		}
	}
	return pStart, qStart, best, best > 0
}

func sameStep(a, b PathStep) bool {
	return a.Attr == b.Attr && a.Domain == b.Domain && a.Range == b.Range && a.Set == b.Set
}
