package gom

import (
	"strings"
	"testing"
)

func mustTuple(t *testing.T, s *Schema, name string, sups []*Type, attrs []Attribute) *Type {
	t.Helper()
	typ, err := s.DefineTuple(name, sups, attrs)
	if err != nil {
		t.Fatalf("DefineTuple(%s): %v", name, err)
	}
	return typ
}

func TestSchemaBuiltins(t *testing.T) {
	s := NewSchema()
	for _, name := range []string{"STRING", "INTEGER", "DECIMAL", "BOOL", "CHAR"} {
		typ, ok := s.Lookup(name)
		if !ok {
			t.Fatalf("builtin %s missing", name)
		}
		if typ.Kind() != AtomicType {
			t.Errorf("builtin %s: kind = %v, want atomic", name, typ.Kind())
		}
	}
	if _, ok := s.Lookup("ROBOT"); ok {
		t.Error("unexpected type ROBOT in fresh schema")
	}
}

func TestDefineTupleAndAttributes(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	manu := mustTuple(t, s, "MANUFACTURER", nil, []Attribute{{"Name", str}, {"Location", str}})
	tool := mustTuple(t, s, "TOOL", nil, []Attribute{{"Function", str}, {"ManufacturedBy", manu}})

	if got := len(tool.Attributes()); got != 2 {
		t.Fatalf("TOOL attribute count = %d, want 2", got)
	}
	a, ok := tool.Attribute("ManufacturedBy")
	if !ok || a.Type != manu {
		t.Fatalf("TOOL.ManufacturedBy = %+v ok=%v, want MANUFACTURER", a, ok)
	}
	if _, ok := tool.Attribute("Nope"); ok {
		t.Error("unexpected attribute Nope")
	}
}

func TestDuplicateTypeRejected(t *testing.T) {
	s := NewSchema()
	mustTuple(t, s, "T", nil, nil)
	if _, err := s.DefineTuple("T", nil, nil); err == nil {
		t.Fatal("duplicate type T accepted")
	}
	if _, err := s.DefineTuple("ANY", nil, nil); err == nil {
		t.Fatal("reserved name ANY accepted")
	}
}

func TestDuplicateAttributeRejected(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	if _, err := s.DefineTuple("T", nil, []Attribute{{"A", str}, {"A", str}}); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
}

func TestInheritance(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	integer := s.MustLookup("INTEGER")
	base := mustTuple(t, s, "BASE", nil, []Attribute{{"Name", str}})
	mid := mustTuple(t, s, "MID", []*Type{base}, []Attribute{{"Count", integer}})
	leaf := mustTuple(t, s, "LEAF", []*Type{mid}, []Attribute{{"Extra", str}})

	if got := len(leaf.Attributes()); got != 3 {
		t.Fatalf("LEAF attributes = %d, want 3 (inherited first)", got)
	}
	if leaf.Attributes()[0].Name != "Name" {
		t.Errorf("inherited attribute order wrong: %v", leaf.Attributes())
	}
	if !leaf.IsSubtypeOf(base) || !leaf.IsSubtypeOf(mid) || !leaf.IsSubtypeOf(leaf) {
		t.Error("subtype relation broken")
	}
	if base.IsSubtypeOf(leaf) {
		t.Error("supertype reported as subtype")
	}
}

func TestMultipleInheritanceDiamond(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	root := mustTuple(t, s, "ROOT", nil, []Attribute{{"Name", str}})
	a := mustTuple(t, s, "A", []*Type{root}, []Attribute{{"AOnly", str}})
	b := mustTuple(t, s, "B", []*Type{root}, []Attribute{{"BOnly", str}})
	d := mustTuple(t, s, "D", []*Type{a, b}, nil)
	// Name comes in twice via the diamond but identically: admitted once.
	if got := len(d.Attributes()); got != 3 {
		t.Fatalf("diamond attributes = %d, want 3: %v", got, d.Attributes())
	}
}

func TestMultipleInheritanceConflictRejected(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	integer := s.MustLookup("INTEGER")
	a := mustTuple(t, s, "A", nil, []Attribute{{"X", str}})
	b := mustTuple(t, s, "B", nil, []Attribute{{"X", integer}})
	if _, err := s.DefineTuple("C", []*Type{a, b}, nil); err == nil {
		t.Fatal("conflicting inherited attributes accepted")
	}
}

func TestNonTupleSupertypeRejected(t *testing.T) {
	s := NewSchema()
	set, err := s.DefineSet("S", s.MustLookup("STRING"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DefineTuple("T", []*Type{set}, nil); err == nil {
		t.Fatal("set supertype accepted")
	}
}

func TestPowersetRejected(t *testing.T) {
	s := NewSchema()
	inner, err := s.DefineSet("INNER", s.MustLookup("STRING"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DefineSet("OUTER", inner); err == nil {
		t.Fatal("powerset accepted, paper forbids it")
	}
}

func TestSetAndListTypes(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	part := mustTuple(t, s, "PART", nil, []Attribute{{"Name", str}})
	set, err := s.DefineSet("PARTSET", part)
	if err != nil {
		t.Fatal(err)
	}
	if set.Kind() != SetType || set.Elem() != part {
		t.Errorf("set type wrong: kind=%v elem=%v", set.Kind(), set.Elem())
	}
	list, err := s.DefineList("PARTLIST", part)
	if err != nil {
		t.Fatal(err)
	}
	if list.Kind() != ListType || list.Elem() != part {
		t.Errorf("list type wrong: kind=%v elem=%v", list.Kind(), list.Elem())
	}
}

func TestTypeDefinitionRendering(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	base := mustTuple(t, s, "BASE", nil, []Attribute{{"Name", str}})
	sub := mustTuple(t, s, "SUB", []*Type{base}, []Attribute{{"Extra", str}})
	def := sub.Definition()
	for _, want := range []string{"type SUB is", "supertypes (BASE)", "Extra: STRING"} {
		if !strings.Contains(def, want) {
			t.Errorf("Definition() = %q, missing %q", def, want)
		}
	}
	set, _ := s.DefineSet("BASESET", base)
	if got := set.Definition(); got != "type BASESET is {BASE};" {
		t.Errorf("set Definition() = %q", got)
	}
}

func TestAcceptsValue(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	integer := s.MustLookup("INTEGER")
	if !str.AcceptsValue(nil) {
		t.Error("NULL must be accepted by STRING")
	}
	if !str.AcceptsValue(String("x")) || str.AcceptsValue(Integer(1)) {
		t.Error("atomic kind check broken for STRING")
	}
	if !integer.AcceptsValue(Integer(1)) || integer.AcceptsValue(String("x")) {
		t.Error("atomic kind check broken for INTEGER")
	}
	tup := mustTuple(t, s, "T", nil, nil)
	if !tup.AcceptsValue(Ref(7)) || tup.AcceptsValue(String("x")) {
		t.Error("tuple slot must accept refs only")
	}
}
