package gom

import (
	"strings"
	"testing"
)

func TestParseRobotSchema(t *testing.T) {
	src := `
		-- The robot model of §2.2.
		type ROBOT SET is {ROBOT};
		type ROBOT is [Name: STRING, Arm: ARM];
		type ARM is [Kinematics: STRING, MountedTool: TOOL];
		type TOOL is [Function: STRING, ManufacturedBy: MANUFACTURER];
		type MANUFACTURER is [Name: STRING, Location: STRING];
		var OurRobots: ROBOT SET;
	`
	s, vars, err := ParseSchema(src)
	if err != nil {
		t.Fatal(err)
	}
	set, ok := s.Lookup("ROBOT_SET")
	if !ok || set.Kind() != SetType {
		t.Fatal("multi-word type name 'ROBOT SET' not normalized to ROBOT_SET")
	}
	robot := s.MustLookup("ROBOT")
	if set.Elem() != robot {
		t.Error("ROBOT_SET element type wrong")
	}
	a, ok := robot.Attribute("Arm")
	if !ok || a.Type.Name() != "ARM" {
		t.Error("ROBOT.Arm missing or mistyped")
	}
	if len(vars) != 1 || vars[0].Name != "OurRobots" || vars[0].Type != set {
		t.Errorf("vars = %+v", vars)
	}
}

func TestParseSupertypesAndLists(t *testing.T) {
	src := `
		type VEHICLE is [Name: STRING];
		type MOTORIZED is [Horsepower: INTEGER];
		type CAR is supertypes (VEHICLE, MOTORIZED) [Doors: INTEGER];
		type CARLIST is <CAR>;
	`
	s, _, err := ParseSchema(src)
	if err != nil {
		t.Fatal(err)
	}
	car := s.MustLookup("CAR")
	if len(car.Supertypes()) != 2 {
		t.Fatalf("CAR supertypes = %v", car.Supertypes())
	}
	if got := len(car.Attributes()); got != 3 {
		t.Errorf("CAR attributes = %d, want 3", got)
	}
	if !car.IsSubtypeOf(s.MustLookup("VEHICLE")) {
		t.Error("CAR not a subtype of VEHICLE")
	}
	cl := s.MustLookup("CARLIST")
	if cl.Kind() != ListType || cl.Elem() != car {
		t.Error("CARLIST wrong")
	}
}

func TestParseForwardAndRecursiveReferences(t *testing.T) {
	src := `
		type A is [Next: B];
		type B is [Back: A];
		type Part is [Sub: PartSET];
		type PartSET is {Part};
	`
	s, _, err := ParseSchema(src)
	if err != nil {
		t.Fatalf("mutually recursive schema rejected: %v", err)
	}
	a := s.MustLookup("A")
	b := s.MustLookup("B")
	if attr, _ := a.Attribute("Next"); attr.Type != b {
		t.Error("A.Next mistyped")
	}
	if attr, _ := b.Attribute("Back"); attr.Type != a {
		t.Error("B.Back mistyped")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined type", `type A is [X: NOPE];`, "undefined type"},
		{"duplicate type", `type A is [X: STRING]; type A is [Y: STRING];`, "twice"},
		{"supertype cycle", `type A is supertypes (B) [ ]; type B is supertypes (A) [ ];`, "cycle"},
		{"powerset", `type S is {STRING2}; type STRING2 is {STRING};`, "powerset"},
		{"set supertype", `type S is {STRING}; type T is supertypes (S) [ ];`, "not tuple-structured"},
		{"missing semicolon", `type A is [X: STRING]`, "expected"},
		{"garbage", `typo A is [X: STRING];`, "expected 'type' or 'var'"},
		{"bad var", `var V: NOPE;`, "undefined type"},
		{"duplicate attr", `type A is [X: STRING, X: STRING];`, "duplicate attribute"},
	}
	for _, c := range cases {
		_, _, err := ParseSchema(c.src)
		if err == nil {
			t.Errorf("%s: accepted %q", c.name, c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.wantSub)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
		// line comment
		type A is [X: STRING]; -- trailing comment
		-- full line
		var V: A;
	`
	_, vars, err := ParseSchema(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 1 {
		t.Errorf("vars = %v", vars)
	}
}

func TestDefinitionRoundTrip(t *testing.T) {
	src := `
		type MANUFACTURER is [Name: STRING, Location: STRING];
		type TOOL is [Function: STRING, ManufacturedBy: MANUFACTURER];
	`
	s1, _, err := ParseSchema(src)
	if err != nil {
		t.Fatal(err)
	}
	// Re-parse the rendered definitions; the result must look the same.
	var rendered strings.Builder
	for _, typ := range s1.Types() {
		if typ.Kind() != AtomicType {
			rendered.WriteString(typ.Definition())
			rendered.WriteString("\n")
		}
	}
	s2, _, err := ParseSchema(rendered.String())
	if err != nil {
		t.Fatalf("re-parse of %q failed: %v", rendered.String(), err)
	}
	tool := s2.MustLookup("TOOL")
	if a, ok := tool.Attribute("ManufacturedBy"); !ok || a.Type.Name() != "MANUFACTURER" {
		t.Error("round-tripped schema lost TOOL.ManufacturedBy")
	}
}
