package gom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestValueKindsAndStrings(t *testing.T) {
	cases := []struct {
		v    Value
		kind AtomicKind
		str  string
	}{
		{String("x"), KindString, `"x"`},
		{Integer(-5), KindInteger, "-5"},
		{Decimal(2.5), KindDecimal, "2.5"},
		{Bool(true), KindBool, "true"},
		{Char('A'), KindChar, "'A'"},
		{Ref(3), KindRef, "i3"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v: String = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
	for _, k := range []AtomicKind{KindString, KindInteger, KindDecimal, KindBool, KindChar, KindRef, KindInvalid} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func TestValueEquality(t *testing.T) {
	pairs := []struct {
		a, b  Value
		equal bool
	}{
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Integer(1), Integer(1), true},
		{Integer(1), Decimal(1), false}, // cross-kind never equal
		{Decimal(1.5), Decimal(1.5), true},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Char('x'), Char('x'), true},
		{Char('x'), String("x"), false},
		{Ref(1), Ref(1), true},
		{Ref(1), Ref(2), false},
		{Ref(1), Integer(1), false},
	}
	for _, p := range pairs {
		if got := p.a.Equal(p.b); got != p.equal {
			t.Errorf("%v.Equal(%v) = %v, want %v", p.a, p.b, got, p.equal)
		}
	}
	if !ValuesEqual(nil, nil) {
		t.Error("NULL must equal NULL in ValuesEqual")
	}
	if ValuesEqual(nil, String("x")) || ValuesEqual(String("x"), nil) {
		t.Error("NULL must not equal a value")
	}
	if !IsNull(nil) || IsNull(String("")) {
		t.Error("IsNull broken")
	}
	if ValueString(nil) != "NULL" {
		t.Error("ValueString(nil) != NULL")
	}
}

func TestOIDStringForms(t *testing.T) {
	if NilOID.String() != "NULL" || !NilOID.IsNil() {
		t.Error("NilOID rendering broken")
	}
	if OID(42).String() != "i42" || OID(42).IsNil() {
		t.Error("OID rendering broken")
	}
	if OID(7).GoString() != "gom.OID(7)" {
		t.Errorf("GoString = %q", OID(7).GoString())
	}
	if Ref(9).OID() != OID(9) {
		t.Error("Ref.OID broken")
	}
}

func TestValueKeyInjective(t *testing.T) {
	// valueKey must distinguish values across and within kinds.
	mk := func(tag uint8, n int32, s string) Value {
		switch tag % 6 {
		case 0:
			return String(s)
		case 1:
			return Integer(n)
		case 2:
			return Decimal(float64(n) / 2)
		case 3:
			return Bool(n%2 == 0)
		case 4:
			return Char(rune(n%1000 + 1))
		default:
			return Ref(OID(uint64(uint32(n)) + 1))
		}
	}
	f := func(t1, t2 uint8, n1, n2 int32, s1, s2 string) bool {
		a, b := mk(t1, n1, s1), mk(t2, n2, s2)
		if valueKey(a) == valueKey(b) {
			return ValuesEqual(a, b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if valueKey(nil) != "N" {
		t.Errorf("valueKey(nil) = %q", valueKey(nil))
	}
}

func TestObjectString(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	part := mustTuple(t, s, "PART", nil, []Attribute{{"Name", str}})
	set, _ := s.DefineSet("PARTSET", part)
	list, _ := s.DefineList("PARTLIST", part)
	ob := NewObjectBase(s)

	p := ob.MustNew(part)
	ob.MustSetAttr(p.ID(), "Name", String("Door"))
	if got := p.String(); got != fmt.Sprintf("%s:PART[Name: \"Door\"]", p.ID()) {
		t.Errorf("tuple String = %q", got)
	}
	so := ob.MustNew(set)
	ob.MustInsertIntoSet(so.ID(), Ref(p.ID()))
	if got := so.String(); got != fmt.Sprintf("%s:PARTSET{%s}", so.ID(), p.ID()) {
		t.Errorf("set String = %q", got)
	}
	lo := ob.MustNew(list)
	ob.AppendToList(lo.ID(), Ref(p.ID()))
	if got := lo.String(); got != fmt.Sprintf("%s:PARTLIST<%s>", lo.ID(), p.ID()) {
		t.Errorf("list String = %q", got)
	}
	// Accessors exercised.
	if p.Type() != part {
		t.Error("Type() broken")
	}
	if got, _ := ob.Get(p.ID()); got != p {
		t.Error("Get() broken")
	}
	if ob.Count() != 3 {
		t.Errorf("Count = %d", ob.Count())
	}
	if ob.Schema() != s {
		t.Error("Schema() broken")
	}
}

func TestTypeIntrospection(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	base := mustTuple(t, s, "BASE", nil, []Attribute{{"Name", str}})
	sub := mustTuple(t, s, "SUB", []*Type{base}, []Attribute{{"Extra", str}})

	if got := sub.OwnAttributes(); len(got) != 1 || got[0].Name != "Extra" {
		t.Errorf("OwnAttributes = %v", got)
	}
	if got := s.TupleTypes(); len(got) != 2 || got[0].Name() != "BASE" {
		t.Errorf("TupleTypes = %v", got)
	}
	if str.AtomicKind() != KindString || base.AtomicKind() != KindInvalid {
		t.Error("AtomicKind broken")
	}
	for _, k := range []TypeKind{AtomicType, TupleType, SetType, ListType, TypeKind(99)} {
		if k.String() == "" {
			t.Errorf("TypeKind(%d) has empty name", k)
		}
	}
	if base.String() != "BASE" {
		t.Errorf("Type.String = %q", base.String())
	}
}

func TestPathIntrospection(t *testing.T) {
	s := NewSchema()
	str := s.MustLookup("STRING")
	manu := mustTuple(t, s, "MANUFACTURER", nil, []Attribute{{"Location", str}})
	tool := mustTuple(t, s, "TOOL", nil, []Attribute{{"ManufacturedBy", manu}})
	p := MustResolvePath(tool, "ManufacturedBy", "Location")
	if p.Root() != tool {
		t.Error("Root broken")
	}
	steps := p.Steps()
	if len(steps) != 2 || steps[0].Attr != "ManufacturedBy" {
		t.Errorf("Steps = %v", steps)
	}
	// Steps returns a copy.
	steps[0].Attr = "X"
	if p.Step(1).Attr != "ManufacturedBy" {
		t.Error("Steps aliases internal storage")
	}
}

func TestMustHelpersPanic(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	s := NewSchema()
	assertPanics("MustLookup", func() { s.MustLookup("NOPE") })
	assertPanics("MustParseSchema", func() { MustParseSchema("garbage") })
	assertPanics("MustResolvePath", func() { MustResolvePath(nil, "X") })
	ob := NewObjectBase(s)
	assertPanics("MustNew", func() { ob.MustNew(s.MustLookup("STRING")) })
	assertPanics("MustSetAttr", func() { ob.MustSetAttr(99, "X", nil) })
	assertPanics("MustInsertIntoSet", func() { ob.MustInsertIntoSet(99, String("x")) })
}
