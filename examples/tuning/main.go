// Physical database design with the analytical cost model (§4–§6): for
// an application profile and usage mix, evaluate every extension ×
// decomposition, rank the designs, find break-even update probabilities,
// and show how the recommendation flips as the workload shifts from
// query-heavy to update-heavy — the (semi-)automatic physical design the
// paper's conclusion proposes.
package main

import (
	"fmt"
	"log"

	"asr/internal/costmodel"
)

func main() {
	// The §6.4.2 engineering profile.
	model, err := costmodel.New(costmodel.DefaultSystem(), costmodel.Profile{
		N:    4,
		C:    []float64{1000, 5000, 10000, 50000, 100000},
		D:    []float64{900, 4000, 8000, 20000},
		Fan:  []float64{2, 2, 3, 4},
		Size: []float64{500, 400, 300, 300, 100},
	})
	if err != nil {
		log.Fatal(err)
	}

	mix := costmodel.Mix{
		Queries: []costmodel.WeightedQuery{
			{W: 0.5, Kind: costmodel.Backward, I: 0, J: 4},
			{W: 0.25, Kind: costmodel.Backward, I: 0, J: 3},
			{W: 0.25, Kind: costmodel.Forward, I: 1, J: 2},
		},
		Updates: []costmodel.WeightedUpdate{
			{W: 0.5, I: 2},
			{W: 0.5, I: 3},
		},
	}

	fmt.Println("design ranking as the update probability grows:")
	for _, pup := range []float64{0.05, 0.2, 0.5, 0.9} {
		ranked, noSup, err := model.Advise(mix.WithPUp(pup))
		if err != nil {
			log.Fatal(err)
		}
		best := ranked[0]
		fmt.Printf("  P_up = %.2f: best = %-22s cost %8.1f (no support: %8.1f, %6.1fx)\n",
			pup, best.Design.String(), best.MixCost, noSup, noSup/best.MixCost)
	}

	fmt.Println("\ntop designs at P_up = 0.2:")
	ranked, noSup, _ := model.Advise(mix.WithPUp(0.2))
	fmt.Print(costmodel.FormatRanking(ranked, 8))
	fmt.Printf("no-support baseline: %.1f\n", noSup)

	// Break-even analysis between the classic contenders.
	bi := costmodel.BinaryDecomposition(4)
	pairs := []struct {
		name string
		a, b costmodel.Design
	}{
		{"left vs full (binary)",
			costmodel.Design{Ext: costmodel.LeftComplete, Dec: bi},
			costmodel.Design{Ext: costmodel.Full, Dec: bi}},
		{"best-dec left vs best-dec full",
			costmodel.Design{Ext: costmodel.LeftComplete, Dec: costmodel.Decomposition{0, 3, 4}},
			costmodel.Design{Ext: costmodel.Full, Dec: costmodel.Decomposition{0, 3, 4}}},
	}
	fmt.Println("\nbreak-even update probabilities:")
	for _, p := range pairs {
		if pup, ok := model.BreakEvenPUp(p.a, p.b, mix, 1e-4); ok {
			fmt.Printf("  %-32s P_up = %.3f\n", p.name, pup)
		} else {
			fmt.Printf("  %-32s no crossover in (0,1)\n", p.name)
		}
	}

	// Storage-vs-speed tradeoff: what does each extension cost in pages?
	fmt.Println("\nstorage (pages, non-redundant) per extension under binary decomposition:")
	for _, x := range costmodel.Extensions {
		fmt.Printf("  %-5s %6.0f pages (no-dec: %6.0f)\n",
			x, model.StoragePages(x, bi), model.StoragePages(x, costmodel.NoDecomposition(4)))
	}
	for _, w := range model.Warnings {
		fmt.Println("warning:", w)
	}
}
