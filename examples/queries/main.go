// The paper's three example queries (§2.2, §2.3), written verbatim in
// its SQL-like notation and evaluated through the query engine — first
// by plain object traversal, then with access support relations
// installed, showing the plan change.
package main

import (
	"fmt"
	"log"

	"asr/internal/asr"
	"asr/internal/gom"
	"asr/internal/paperdb"
	"asr/internal/query"
	"asr/internal/storage"
)

func main() {
	fmt.Println("== Query 1 (robots, linear path) ==")
	r := paperdb.BuildRobots()
	q1 := query.MustParse(`
		select r.Name
		from r in OurRobots
		where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"`)
	fmt.Println(q1)

	runBoth(r.Base, q1, func(mgr *asr.Manager) {
		if _, err := mgr.CreateIndex(r.Path, asr.Canonical, asr.NoDecomposition(r.Path.Arity()-1)); err != nil {
			log.Fatal(err)
		}
	})

	fmt.Println("\n== Query 2 (company, set-valued path, dependent range) ==")
	c := paperdb.BuildCompany()
	q2 := query.MustParse(`
		select d.Name
		from d in Mercedes, b in d.Manufactures.Composition
		where b.Name = "Door"`)
	fmt.Println(q2)
	runBoth(c.Base, q2, func(mgr *asr.Manager) {
		if _, err := mgr.CreateIndex(c.Path, asr.Full, asr.BinaryDecomposition(5)); err != nil {
			log.Fatal(err)
		}
	})

	fmt.Println("\n== Query 3 (path projection) ==")
	q3 := query.MustParse(`
		select d.Manufactures.Composition.Name
		from d in Mercedes
		where d.Name = "Auto"`)
	fmt.Println(q3)
	runBoth(c.Base, q3, nil)
}

// runBoth evaluates the query without any index, then — when install is
// non-nil — with the access support relation it creates.
func runBoth(ob *gom.ObjectBase, q *query.Query, install func(*asr.Manager)) {
	naive := query.New(ob, nil)
	res, err := naive.Run(q)
	if err != nil {
		log.Fatal(err)
	}
	printResult("traversal", res)

	if install == nil {
		return
	}
	mgr := asr.NewManager(ob, storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU))
	install(mgr)
	indexed := query.New(ob, mgr)
	res, err = indexed.Run(q)
	if err != nil {
		log.Fatal(err)
	}
	printResult("with ASR", res)
}

func printResult(label string, res *query.Result) {
	fmt.Printf("  [%s] plan: %s\n", label, res.Plan)
	for _, v := range res.Values {
		fmt.Printf("  [%s]   %s\n", label, gom.ValueString(v))
	}
}
