// The company example of §2.3 and §3: a path with set occurrences.
// Prints the auxiliary relations E_0..E_2, the four extensions, and the
// binary decomposition exactly as the paper's §3 tables show them, then
// evaluates Queries 2 and 3 and the paper's characteristic update ins_i.
package main

import (
	"fmt"
	"log"

	"asr/internal/asr"
	"asr/internal/gom"
	"asr/internal/paperdb"
	"asr/internal/storage"
)

func main() {
	c := paperdb.BuildCompany()
	fmt.Println("extension (Figure 2):")
	fmt.Print(indent(c.Describe()))

	fmt.Printf("path: %s — n=%d steps, k=%d set occurrences, relation arity n+k+1=%d\n\n",
		c.Path, c.Path.Len(), c.Path.SetOccurrences(), c.Path.Arity())

	// The §3 auxiliary relations.
	aux, err := asr.BuildAuxiliaryRelations(c.Base, c.Path)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range aux {
		fmt.Println(a)
	}

	// The four extensions (Definitions 3.4–3.7).
	for _, ext := range asr.Extensions {
		rel, err := asr.BuildExtension(ext, "E_"+ext.String(), aux)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rel)
	}

	// The binary decomposition of the canonical extension (§3, last
	// example) — lossless per Theorem 3.9.
	can, _ := asr.BuildExtension(asr.Canonical, "E_can", aux)
	parts, err := asr.Decompose(can, asr.BinaryDecomposition(5))
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range parts {
		fmt.Println(p)
	}
	back, _ := asr.Recompose("recomposed", parts)
	fmt.Printf("recomposition lossless: %v\n\n", back.Equal(can))

	// Build a maintained index and run the §2.3 queries.
	pool := storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU)
	ix, err := asr.Build(c.Base, c.Path, asr.Full, asr.Decomposition{0, 2, 5}, pool)
	if err != nil {
		log.Fatal(err)
	}
	c.Base.AddObserver(asr.NewMaintainer(ix))

	query2 := func() []string {
		divs, err := ix.QueryBackward(0, 3, gom.String("Door"))
		if err != nil {
			log.Fatal(err)
		}
		var names []string
		for _, id := range asr.OIDsOf(divs) {
			o, _ := c.Base.Get(id)
			nm, _ := o.Attr("Name")
			names = append(names, gom.ValueString(nm))
		}
		return names
	}
	fmt.Println("Query 2 — divisions using a BasePart named 'Door':", query2())

	names, err := ix.QueryForward(0, 3, gom.Ref(c.DivAuto))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Query 3 — BasePart names used by division 'Auto':", names)

	// The §6 characteristic update: insert the Door part into the
	// Sausage product's part set, then hook Sausage into the Space
	// division via a fresh ProdSET.
	fmt.Println("\nins: Space division starts manufacturing Sausage (with a Door!)")
	c.Base.MustInsertIntoSet(c.PartsSausage, gom.Ref(c.PartDoor))
	prodSet := c.Base.MustNew(c.Schema.MustLookup("ProdSET"))
	c.Base.MustInsertIntoSet(prodSet.ID(), gom.Ref(c.ProdSausage))
	c.Base.MustSetAttr(c.DivSpace, "Manufactures", gom.Ref(prodSet.ID()))

	fmt.Println("Query 2 now:", query2())

	// Partial-span query through the full extension: which products
	// contain a part named "Pepper"? (i=1, j=3 — only full supports it.)
	prods, err := ix.QueryBackward(1, 3, gom.String("Pepper"))
	if err != nil {
		log.Fatal(err)
	}
	var pnames []string
	for _, id := range asr.OIDsOf(prods) {
		o, _ := c.Base.Get(id)
		nm, _ := o.Attr("Name")
		pnames = append(pnames, gom.ValueString(nm))
	}
	fmt.Println("partial-span Q_{1,3}(bw, 'Pepper') — products containing Pepper:", pnames)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
