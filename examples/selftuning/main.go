// The §7 self-tuning loop end to end: a workload runs through the index
// manager, the tuner records it, measures the application parameters
// from the live base, recommends a design, installs it, and adapts when
// the workload shifts — "for a recorded database usage pattern the
// system could (semi-)automatically adjust the physical database
// design."
package main

import (
	"fmt"
	"log"

	"asr/internal/asr"
	"asr/internal/gendb"
	"asr/internal/gom"
	"asr/internal/storage"
	"asr/internal/tuner"
)

func main() {
	// A mid-sized synthetic object base.
	db, err := gendb.Generate(gendb.Spec{
		N:    3,
		C:    []int{200, 500, 1000, 2000},
		D:    []int{180, 400, 800},
		Fan:  []int{2, 2, 2},
		Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	pool := storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU)
	mgr := asr.NewManager(db.Base, pool)
	tn := tuner.New(db.Base, mgr)
	tn.Watch(db.Path)

	fmt.Println("phase 1: query-heavy workload (no index yet — every query is a traversal)")
	for k := 0; k < 40; k++ {
		target := db.Extents[3][k%len(db.Extents[3])]
		if _, err := mgr.QueryBackward(db.Path, 0, 3, gom.Ref(target)); err != nil {
			log.Fatal(err)
		}
	}
	insertRandom(db, 2) // a couple of updates

	recs, err := tn.Autotune(1.2)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		fmt.Println("  tuner:", r)
	}
	fmt.Printf("  installed: %v\n\n", mgr.Indexes()[0])

	fmt.Println("phase 2: the workload turns update-heavy")
	insertRandom(db, 150)
	for k := 0; k < 10; k++ {
		target := db.Extents[3][k]
		if _, err := mgr.QueryBackward(db.Path, 0, 3, gom.Ref(target)); err != nil {
			log.Fatal(err)
		}
	}
	recs, err = tn.Autotune(1.2)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		fmt.Println("  tuner:", r)
		fmt.Printf("  mix now has P_up = %.2f\n", r.Mix.PUp)
	}
	fmt.Printf("  installed: %v\n", mgr.Indexes()[0])

	if err := mgr.Healthy(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall indexes consistent after the shift")
}

// insertRandom performs n set insertions at level 1 (the paper's ins_i).
func insertRandom(db *gendb.Database, n int) {
	for k := 0; k < n; k++ {
		src := db.Extents[1][k%len(db.Extents[1])]
		o, _ := db.Base.Get(src)
		v, _ := o.Attr("Next")
		if v == nil {
			continue
		}
		setID := v.(gom.Ref).OID()
		dst := db.Extents[2][(k*7)%len(db.Extents[2])]
		if err := db.Base.InsertIntoSet(setID, gom.Ref(dst)); err != nil {
			log.Fatal(err)
		}
	}
}
