// The robot example of §2.2: a linear path over tuple-structured types.
// Builds the Figure 1 extension, prints it, evaluates Query 1 ("find the
// robots which use a tool manufactured in Utopia") through each of the
// four extensions, and demonstrates that updates keep the answer fresh.
package main

import (
	"fmt"
	"log"

	"asr/internal/asr"
	"asr/internal/gom"
	"asr/internal/paperdb"
	"asr/internal/storage"
)

func main() {
	r := paperdb.BuildRobots()
	fmt.Println("schema (§2.2):")
	for _, t := range r.Schema.Types() {
		if t.Kind() != gom.AtomicType {
			fmt.Println("  " + t.Definition())
		}
	}

	fmt.Println("\nextension (Figure 1):")
	for _, id := range []gom.OID{r.R2D2, r.ArmR2D2, r.Welder, r.RobClone, r.X4D5, r.ArmX4D5, r.Gripper, r.Robi, r.ArmRobi} {
		o, _ := r.Base.Get(id)
		fmt.Println("  " + o.String())
	}

	fmt.Printf("\npath expression: %s (linear: %v, arity %d)\n",
		r.Path, r.Path.IsLinear(), r.Path.Arity())

	// Query 1 through every extension; for the whole path all four are
	// usable (§5.3) and must agree.
	pool := storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU)
	var canonical *asr.Index
	for _, ext := range asr.Extensions {
		ix, err := asr.Build(r.Base, r.Path, ext, asr.BinaryDecomposition(r.Path.Arity()-1), pool)
		if err != nil {
			log.Fatal(err)
		}
		if ext == asr.Canonical {
			canonical = ix
			r.Base.AddObserver(asr.NewMaintainer(ix))
		}
		robots, err := ix.QueryBackward(0, r.Path.Len(), gom.String("Utopia"))
		if err != nil {
			log.Fatal(err)
		}
		var names []string
		for _, id := range asr.OIDsOf(robots) {
			o, _ := r.Base.Get(id)
			nm, _ := o.Attr("Name")
			names = append(names, gom.ValueString(nm))
		}
		fmt.Printf("Query 1 via %-5s extension: %v\n", ext, names)
	}

	// Robi's gripper is swapped for the welder; the canonical index
	// follows incrementally.
	fmt.Println("\nswapping Robi's tool to the welder...")
	r.Base.MustSetAttr(r.ArmRobi, "MountedTool", gom.Ref(r.Welder))
	robots, err := canonical.QueryBackward(0, r.Path.Len(), gom.String("Utopia"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Query 1 still finds %d robots (all tools come from RobClone)\n", len(robots))

	// A new manufacturer outside Utopia takes over the gripper.
	acme := r.Base.MustNew(r.Schema.MustLookup("MANUFACTURER"))
	r.Base.MustSetAttr(acme.ID(), "Name", gom.String("Acme"))
	r.Base.MustSetAttr(acme.ID(), "Location", gom.String("Elsewhere"))
	r.Base.MustSetAttr(r.Gripper, "ManufacturedBy", gom.Ref(acme.ID()))

	robots, _ = canonical.QueryBackward(0, r.Path.Len(), gom.String("Utopia"))
	fmt.Printf("after the gripper moved to Acme/Elsewhere: %d robots use Utopia tools\n", len(robots))
	for _, id := range asr.OIDsOf(robots) {
		o, _ := r.Base.Get(id)
		nm, _ := o.Attr("Name")
		fmt.Printf("  %s %s\n", id, gom.ValueString(nm))
	}
}
