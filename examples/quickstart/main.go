// Quickstart: define a GOM schema, populate a few objects, build an
// access support relation over a path expression, and run forward and
// backward path queries through it.
package main

import (
	"fmt"
	"log"

	"asr/internal/asr"
	"asr/internal/gom"
	"asr/internal/storage"
)

func main() {
	// 1. Define the schema in the paper's declaration syntax.
	schema, _, err := gom.ParseSchema(`
		type CITY     is [Name: STRING];
		type COMPANY  is [Name: STRING, SeatedIn: CITY];
		type EMPLOYEE is [Name: STRING, WorksFor: COMPANY];
	`)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Populate an object base.
	ob := gom.NewObjectBase(schema)
	city := ob.MustNew(schema.MustLookup("CITY"))
	ob.MustSetAttr(city.ID(), "Name", gom.String("Karlsruhe"))

	company := ob.MustNew(schema.MustLookup("COMPANY"))
	ob.MustSetAttr(company.ID(), "Name", gom.String("RobClone"))
	ob.MustSetAttr(company.ID(), "SeatedIn", gom.Ref(city.ID()))

	var employees []gom.OID
	for _, name := range []string{"Alfons", "Guido", "Peter"} {
		e := ob.MustNew(schema.MustLookup("EMPLOYEE"))
		ob.MustSetAttr(e.ID(), "Name", gom.String(name))
		ob.MustSetAttr(e.ID(), "WorksFor", gom.Ref(company.ID()))
		employees = append(employees, e.ID())
	}

	// 3. Declare a path expression and build an access support relation:
	//    full extension, binary decomposition, stored in dual-clustered
	//    B+ trees on simulated pages.
	path := gom.MustResolvePath(schema.MustLookup("EMPLOYEE"), "WorksFor", "SeatedIn", "Name")
	pool := storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU)
	index, err := asr.Build(ob, path, asr.Full, asr.BinaryDecomposition(path.Arity()-1), pool)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Keep it maintained under updates.
	ob.AddObserver(asr.NewMaintainer(index))

	// 5. Backward query: which employees work in Karlsruhe? This is the
	//    paper's functional join — solved by index lookup instead of an
	//    exhaustive search over uni-directional references.
	anchors, err := index.QueryBackward(0, path.Len(), gom.String("Karlsruhe"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("employees seated in Karlsruhe:")
	for _, id := range asr.OIDsOf(anchors) {
		o, _ := ob.Get(id)
		name, _ := o.Attr("Name")
		fmt.Printf("  %s %s\n", id, gom.ValueString(name))
	}

	// 6. Forward query: where does the first employee's company sit?
	cities, err := index.QueryForward(0, path.Len(), gom.Ref(employees[0]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Alfons works in:", cities)

	// 7. Updates propagate into the index automatically.
	ob.MustSetAttr(city.ID(), "Name", gom.String("Munich"))
	anchors, _ = index.QueryBackward(0, path.Len(), gom.String("Munich"))
	fmt.Printf("after the city was renamed, %d employees match Munich\n", len(anchors))

	fmt.Println("index layout:", index)
}
