module asr

go 1.22
