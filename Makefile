GO ?= go

.PHONY: all build test race bench vet repro ci

all: build test

# What CI runs (.github/workflows/ci.yml): build, vet, tests, race suite.
ci: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Concurrency suite: the whole tree under the race detector, including
# the reader/writer stress tests in internal/asr and internal/query.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

# Regenerate every paper table/figure (EXPERIMENTS.md numbers).
repro:
	$(GO) run ./cmd/asrbench -all
