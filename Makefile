GO ?= go

.PHONY: all build test race bench bench-smoke bench-compare vet repro ci crash-matrix server-smoke chaos-smoke backup-smoke

all: build test

# What CI runs (.github/workflows/ci.yml): build, vet, tests, race
# suite, crash matrix, bench smoke, server smoke, chaos smoke, backup
# smoke.
ci: build vet test race crash-matrix bench-smoke server-smoke chaos-smoke backup-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Concurrency suite: the whole tree under the race detector, including
# the reader/writer stress tests in internal/asr and internal/query.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Smoke-test the instrumented path end to end: one tiny asrbench
# experiment (EXPLAIN ANALYZE calibration) with a telemetry snapshot,
# then the perf snapshot + diff.
bench-smoke:
	$(GO) run ./cmd/asrbench -experiment explain-calib -metrics
	$(MAKE) bench-compare

# Refresh the machine-readable perf+startup snapshot (BENCH_9.json),
# diff it against the PR-4 era snapshot (informational — wall times on
# shared runners are noisy), then run the trajectory gate: the new
# snapshot's speedup and tree-shape metrics must be within
# -gate-threshold of the best of the last -gate-keep snapshots in
# bench-history/, or the target exits nonzero. A pass records the
# snapshot into the history. CI caches bench-history/ across runs and
# uploads it as an artifact (docs/PERFORMANCE.md, "Trajectory gate").
bench-compare:
	$(GO) run ./cmd/asrbench -snapshot BENCH_9.json -compare BENCH_4.json -gate bench-history

# Durability suite under the race detector: crash the page file and WAL
# at every admitted physical write (storage level) and across the
# managed-index mutation schedule (asr level), and fuzz the WAL record
# codec briefly. Deterministic seeds — failures reproduce exactly.
crash-matrix:
	$(GO) test -race -count=1 -run 'Crash|Recover|SaveOpen|OpenFrom|Torn|WAL' ./internal/storage/ ./internal/asr/
	$(GO) test -run=FuzzWALRecordDecode -fuzz=FuzzWALRecordDecode -fuzztime=10s ./internal/storage/

# Service-layer gate under the race detector (docs/SERVICE.md): boot
# gomd in-process on ephemeral ports, burst 30 connections, deliver a
# real SIGTERM mid-traffic, and require byte-identical results, typed
# rejections only, a served /metrics page, and a clean drain. Also
# probes the admin observability plane (/debug/pprof, /traces,
# /slowlog, /readyz load counts), the trace-propagation contract, and
# vets that every server_*/trace_* metric in the source is documented;
# fuzzes the wire-frame codec briefly (mirroring the WAL codec fuzz)
# and replays the protocol saturation + drain tests.
server-smoke:
	$(GO) test -race -count=1 -run 'TestGomd' ./cmd/gomd/
	$(GO) test -race -count=1 -run 'TestSaturation|TestDrain|TestCancel|TestOverload' ./internal/server/
	$(GO) test -race -count=1 -run 'TestAdminPlane|TestSlowLog|TestTrailerOnError|TestServerGeneratesTrace|TestServerMetricsAreDocumented' ./internal/server/
	$(GO) test -run=FuzzFrameDecode -fuzz=FuzzFrameDecode -fuzztime=10s ./internal/server/wire/

# Chaos gate under the race detector (docs/ROBUSTNESS.md, "Network
# chaos"): the fixed-seed saturation suite (32 connections under
# continuous network + disk fault injection; every response
# byte-identical or typed, zero hangs, zero goroutine leaks), the
# server-protection and retry suites, then one randomized-seed
# saturation pass so new fault schedules are explored on every run —
# the seed is logged and reproduces a failure exactly.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaos|TestRequestDeadline|TestClientCancelBeats|TestIdleWatchdog|TestSlowReader' ./internal/server/
	$(GO) test -race -count=1 ./internal/server/chaos/ ./internal/server/client/
	CHAOS_SEED=$$$$ $(GO) test -race -count=1 -short -run 'TestChaosSaturation' -v ./internal/server/

# Backup/PITR/scrub gate under the race detector (docs/ROBUSTNESS.md,
# "Backup, PITR, and scrubbing"): WAL segment archiving (torn-seal
# crash matrix, typed gap/corruption detection, retention), online
# fuzzy backup + restore to every committed LSN, crash-mid-restore
# rerun convergence, the scrubber racing live writers, the manifest
# fsync crash stages, the admin /backup + /healthz plane, the gomd and
# gomshell surfaces, and the end-to-end PITR gate: online backup under
# an 8-worker query load, planted corruption healed mid-stream, then
# restores to three LSNs verified against a dump-replay oracle.
backup-smoke:
	$(GO) test -race -count=1 -run 'TestArchive|TestBackup|TestRestore|TestScrub|TestSaveToCrash' ./internal/storage/ ./internal/asr/
	$(GO) test -race -count=1 -run 'TestPITREndToEnd' ./internal/asr/
	$(GO) test -race -count=1 -run 'TestAdminBackup|TestAdminHealthz' ./internal/server/
	$(GO) test -race -count=1 -run 'TestGomdDurableBackupAndScrub' ./cmd/gomd/
	$(GO) test -race -count=1 -run 'TestShellBackupRestore' ./cmd/gomshell/

vet:
	$(GO) vet ./internal/telemetry/
	$(GO) vet ./...

# Regenerate every paper table/figure (EXPERIMENTS.md numbers).
repro:
	$(GO) run ./cmd/asrbench -all
