GO ?= go

.PHONY: all build test race bench bench-smoke vet repro ci

all: build test

# What CI runs (.github/workflows/ci.yml): build, vet, tests, race
# suite, bench smoke.
ci: build vet test race bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Concurrency suite: the whole tree under the race detector, including
# the reader/writer stress tests in internal/asr and internal/query.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Smoke-test the instrumented path end to end: one tiny asrbench
# experiment (EXPLAIN ANALYZE calibration) with a telemetry snapshot.
bench-smoke:
	$(GO) run ./cmd/asrbench -experiment explain-calib -metrics

vet:
	$(GO) vet ./internal/telemetry/
	$(GO) vet ./...

# Regenerate every paper table/figure (EXPERIMENTS.md numbers).
repro:
	$(GO) run ./cmd/asrbench -all
