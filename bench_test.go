// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper (regenerating the same rows/series the
// paper reports — run `go run ./cmd/asrbench -all` for the tables
// themselves), plus micro-benchmarks of the underlying substrates.
package repro

import (
	"fmt"
	"testing"

	"asr/internal/asr"
	"asr/internal/bench"
	"asr/internal/costmodel"
	"asr/internal/engine"
	"asr/internal/gendb"
	"asr/internal/gom"
	"asr/internal/storage"
)

// benchExperiment runs one registered reproduction experiment per
// iteration and reports its row count.
func benchExperiment(b *testing.B, id string) {
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var rows int
	for i := 0; i < b.N; i++ {
		tab, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tab.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// One benchmark per paper artifact. Figures 1/2 and the §3 tables are
// example-database constructions; Figures 4–17 evaluate the analytical
// model; sim and the ablations run the page-level simulator.

func BenchmarkFig1RobotTraversal(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkFig2CompanyTraversal(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkTab3ExtensionConstruction(b *testing.B) { benchExperiment(b, "tab3") }
func BenchmarkFig4StorageByDesign(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5StorageVsDefined(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6BackwardQueryCost(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7QueryCostVsObjectSize(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8PartialPathSupport(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9FanoutSweep(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkFig11UpdateCost(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFig12UpdateCostVariant(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13UpdateVsObjectSize(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkFig14MixBinary(b *testing.B)            { benchExperiment(b, "fig14") }
func BenchmarkFig15MixDecomp034(b *testing.B)         { benchExperiment(b, "fig15") }
func BenchmarkFig16LeftVsFull(b *testing.B)           { benchExperiment(b, "fig16") }
func BenchmarkFig17RightVsFull(b *testing.B)          { benchExperiment(b, "fig17") }
func BenchmarkAdvisorDesignSweep(b *testing.B)        { benchExperiment(b, "advisor") }
func BenchmarkSimMeasuredVsPredicted(b *testing.B)    { benchExperiment(b, "sim") }
func BenchmarkAblationDualTree(b *testing.B)          { benchExperiment(b, "abl-dualtree") }
func BenchmarkAblationSharing(b *testing.B)           { benchExperiment(b, "abl-sharing") }

// Substrate micro-benchmarks.

func newBenchDB(b *testing.B) (*gendb.Database, *gendb.Placement) {
	b.Helper()
	db, err := gendb.Generate(gendb.Spec{
		N:    3,
		C:    []int{200, 500, 1000, 2000},
		D:    []int{180, 400, 800},
		Fan:  []int{2, 2, 2},
		Seed: 99,
	})
	if err != nil {
		b.Fatal(err)
	}
	pool := storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU)
	place, err := gendb.Place(db, pool, []int{200, 200, 200, 200})
	if err != nil {
		b.Fatal(err)
	}
	return db, place
}

func newBenchIndex(b *testing.B, db *gendb.Database, ext asr.Extension) *asr.Index {
	b.Helper()
	pool := storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU)
	ix, err := asr.Build(db.Base, db.Path, ext, asr.BinaryDecomposition(db.Path.Arity()-1), pool)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

func BenchmarkASRBuildFull(b *testing.B) {
	db, _ := newBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU)
		if _, err := asr.Build(db.Base, db.Path, asr.Full, asr.BinaryDecomposition(db.Path.Arity()-1), pool); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkASRQueryForward(b *testing.B) {
	db, place := newBenchDB(b)
	ix := newBenchIndex(b, db, asr.Full)
	e := engine.New(place)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := db.Extents[0][i%len(db.Extents[0])]
		if _, _, err := e.ForwardASR(ix, start, 0, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkASRQueryBackward(b *testing.B) {
	db, place := newBenchDB(b)
	ix := newBenchIndex(b, db, asr.RightComplete)
	e := engine.New(place)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := db.Extents[3][i%len(db.Extents[3])]
		if _, _, err := e.BackwardASR(ix, target, 0, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoASRBackwardSearch(b *testing.B) {
	db, place := newBenchDB(b)
	e := engine.New(place)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := db.Extents[3][i%len(db.Extents[3])]
		if _, _, err := e.BackwardNoASR(target, 0, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkASRMaintainInsert(b *testing.B) {
	db, _ := newBenchDB(b)
	ix := newBenchIndex(b, db, asr.Full)
	m := asr.NewMaintainer(ix)
	db.Base.AddObserver(m)
	// Toggle one set membership back and forth.
	src := db.Extents[2][0]
	o, _ := db.Base.Get(src)
	v, _ := o.Attr("Next")
	if v == nil {
		b.Skip("anchor object has no set")
	}
	setID := v.(gom.Ref).OID()
	dst := gom.Ref(db.Extents[3][len(db.Extents[3])-1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if err := db.Base.InsertIntoSet(setID, dst); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := db.Base.RemoveFromSet(setID, dst); err != nil {
				b.Fatal(err)
			}
		}
		if m.Err() != nil {
			b.Fatal(m.Err())
		}
	}
}

func BenchmarkCostModelFullSweep(b *testing.B) {
	m, err := costmodel.New(costmodel.DefaultSystem(), costmodel.Profile{
		N:    4,
		C:    []float64{1000, 5000, 10000, 50000, 100000},
		D:    []float64{900, 4000, 8000, 20000},
		Fan:  []float64{2, 2, 3, 4},
		Size: []float64{500, 400, 300, 300, 100},
	})
	if err != nil {
		b.Fatal(err)
	}
	mx := costmodel.Mix{
		Queries: []costmodel.WeightedQuery{{W: 1, Kind: costmodel.Backward, I: 0, J: 4}},
		Updates: []costmodel.WeightedUpdate{{W: 1, I: 2}},
		PUp:     0.2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Advise(mx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkYao(b *testing.B) {
	for i := 0; i < b.N; i++ {
		costmodel.Yao(float64(i%1000), 500, 100000)
	}
}

// Example of regenerating one figure's series inside a benchmark report.
func BenchmarkFig6Series(b *testing.B) {
	e, _ := bench.Lookup("fig6")
	var tab fmt.Stringer
	for i := 0; i < b.N; i++ {
		t, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		tab = t
	}
	if b.N > 0 && tab != nil {
		b.Logf("\n%s", tab)
	}
}

func BenchmarkSimUpdateMaintenance(b *testing.B) { benchExperiment(b, "sim-update") }

func BenchmarkSimMixStreams(b *testing.B) { benchExperiment(b, "sim-mix") }

// BenchmarkQueryParallel measures the parallel query executor against
// its sequential baseline on the expensive case: a backward query with
// no applicable index, which forces an exhaustive search over the whole
// anchor extent (§5.6.2). The same query also runs through a canonical
// ASR for reference.
func BenchmarkQueryParallel(b *testing.B) {
	db, err := gendb.Generate(gendb.Spec{
		N:    3,
		C:    []int{400, 1000, 2000, 4000},
		D:    []int{360, 800, 1600},
		Fan:  []int{2, 2, 2},
		Seed: 99,
	})
	if err != nil {
		b.Fatal(err)
	}
	pool := storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU)
	mgr := asr.NewManager(db.Base, pool)
	span := db.Path.Len()
	// A reachable target (a fixed extent member may have no incoming path).
	var target gom.Value
	for _, anchor := range db.Extents[0] {
		vals, err := mgr.QueryForward(db.Path, 0, span, gom.Ref(anchor))
		if err != nil {
			b.Fatal(err)
		}
		if len(vals) > 0 {
			target = vals[0]
			break
		}
	}
	if target == nil {
		b.Fatal("no reachable target")
	}

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("exhaustive/w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mgr.QueryBackwardParallel(db.Path, 0, span, workers, target); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	if _, err := mgr.CreateIndex(db.Path, asr.Canonical, asr.NoDecomposition(db.Path.Arity()-1)); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("indexed/w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mgr.QueryBackwardParallel(db.Path, 0, span, workers, target); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// The shard effect in isolation: the same indexed 8-worker query
	// against a single-stripe pool and an 8-stripe pool. Index probes
	// pin pages through the pool, so the shard mutexes are the only
	// difference between the two runs.
	for _, shards := range []int{1, 8} {
		pool := storage.NewBufferPoolShards(storage.NewDisk(0), 0, storage.LRU, shards)
		smgr := asr.NewManager(db.Base, pool)
		if _, err := smgr.CreateIndex(db.Path, asr.Canonical, asr.NoDecomposition(db.Path.Arity()-1)); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("indexed/w8/shards%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := smgr.QueryBackwardParallel(db.Path, 0, span, 8, target); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkASRBuild compares the bottom-up bulk loader (asr.Build) with
// the incremental top-down reference build (asr.BuildIncremental) over
// the same ≥10k-row extension — the tentpole build-path optimization.
// The acceptance bar is bulk ≥ 2× faster.
func BenchmarkASRBuild(b *testing.B) {
	db, err := gendb.Generate(gendb.Spec{
		N:    3,
		C:    []int{2000, 5000, 10000, 20000},
		D:    []int{1800, 4000, 8000},
		Fan:  []int{3, 2, 2},
		Seed: 99,
	})
	if err != nil {
		b.Fatal(err)
	}
	dec := asr.NoDecomposition(db.Path.Arity() - 1)
	probe, err := asr.Build(db.Base, db.Path, asr.Full, dec, storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU))
	if err != nil {
		b.Fatal(err)
	}
	rows := probe.TotalRows()[0]
	if rows < 10000 {
		b.Fatalf("partition holds %d rows, benchmark needs ≥ 10000", rows)
	}

	b.Run("bulk", func(b *testing.B) {
		b.ReportMetric(float64(rows), "rows")
		for i := 0; i < b.N; i++ {
			pool := storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU)
			if _, err := asr.Build(db.Base, db.Path, asr.Full, dec, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		b.ReportMetric(float64(rows), "rows")
		for i := 0; i < b.N; i++ {
			pool := storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU)
			if _, err := asr.BuildIncremental(db.Base, db.Path, asr.Full, dec, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchProbe measures sorted batch probes (LookupForwardBatch,
// one leaf-cursor walk over sorted keys) against the per-value descents
// they replaced, on a wide random frontier.
func BenchmarkBatchProbe(b *testing.B) {
	db, _ := newBenchDB(b)
	ix := newBenchIndex(b, db, asr.Full)
	part := ix.Partitions()[0].Part
	vals := make([]gom.Value, 0, len(db.Extents[0]))
	for _, id := range db.Extents[0] {
		vals = append(vals, gom.Ref(id))
	}

	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range vals {
				if _, err := part.LookupForward(v); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := part.LookupForwardBatch(vals); err != nil {
				b.Fatal(err)
			}
		}
	})
}
