package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"asr/internal/gom"
)

// newTestShell returns a shell writing into buf.
func newTestShell(buf *bytes.Buffer) *shell {
	sh := &shell{vars: map[string]gom.OID{}, out: bufio.NewWriter(buf)}
	sh.reset()
	return sh
}

// runScript executes lines, failing the test on unexpected errors.
func runScript(t *testing.T, sh *shell, buf *bytes.Buffer, lines ...string) string {
	t.Helper()
	for _, line := range lines {
		if err := sh.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	sh.out.Flush()
	return buf.String()
}

func TestShellEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	sh := newTestShell(&buf)
	out := runScript(t, sh, &buf,
		`type CITY is [Name: STRING];`,
		`type PERSON is [Name: STRING, Lives: CITY];`,
		`type PEOPLE is {PERSON};`,
		`new PEOPLE as $Everyone`,
		`new CITY as $c`,
		`set $c.Name = "Karlsruhe"`,
		`new PERSON as $p`,
		`set $p.Name = "Alfons"`,
		`set $p.Lives = $c`,
		`insert $p into $Everyone`,
		`index full binary on PERSON.Lives.Name`,
		`query backward "Karlsruhe" via PERSON.Lives.Name`,
		`select p.Name from p in Everyone where p.Lives.Name = "Karlsruhe"`,
		`show $p`,
		`extent PERSON`,
		`schema`,
		`help`,
	)
	for _, want := range []string{
		"built ASR PERSON.Lives.Name",
		`"Alfons"`,
		"plan: predicate p.Lives.Name",
		"type PERSON is [Name: STRING, Lives: CITY];",
		"commands:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellQueryFallsBackWithoutIndex(t *testing.T) {
	var buf bytes.Buffer
	sh := newTestShell(&buf)
	out := runScript(t, sh, &buf,
		`type CITY is [Name: STRING];`,
		`type PERSON is [Lives: CITY];`,
		`new CITY as $c`,
		`set $c.Name = "Bonn"`,
		`new PERSON as $p`,
		`set $p.Lives = $c`,
		`query backward "Bonn" via PERSON.Lives.Name`,
	)
	if !strings.Contains(out, "i2:PERSON") {
		t.Errorf("fallback query found nothing:\n%s", out)
	}
}

func TestShellErrors(t *testing.T) {
	var buf bytes.Buffer
	sh := newTestShell(&buf)
	runScript(t, sh, &buf, `type CITY is [Name: STRING];`)
	bad := []string{
		`new NOPE as $x`,
		`new CITY $x`,
		`set $x.Name = "y"`, // unbound var
		`set $x = "y"`,      // no attr
		`insert $x into $y`, // unbound
		`show $x`,           // unbound
		`extent NOPE`,       // unknown type
		`index bogus binary on CITY.Name`,
		`index full bogus on CITY.Name`,
		`index full binary on NOPE.Name`,
		`query sideways "x" via CITY.Name`,
		`query backward "x" via CITY.Name`, // no index AND... actually falls back fine
		`frobnicate`,
		`select from where`,
	}
	for _, line := range bad {
		err := sh.exec(line)
		if line == `query backward "x" via CITY.Name` {
			if err != nil {
				t.Errorf("%q should fall back, got %v", line, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("accepted %q", line)
		}
	}
	// A failed type declaration rolls back cleanly.
	if err := sh.exec(`type BROKEN is [X: NOPE];`); err == nil {
		t.Error("broken type accepted")
	}
	if err := sh.exec(`type OK is [X: STRING];`); err != nil {
		t.Errorf("rollback left the parser dirty: %v", err)
	}
}

func TestShellValueParsing(t *testing.T) {
	var buf bytes.Buffer
	sh := newTestShell(&buf)
	runScript(t, sh, &buf,
		`type T is [S: STRING, N: INTEGER, D: DECIMAL, B: BOOL];`,
		`new T as $t`,
		`set $t.S = "hello"`,
		`set $t.N = 42`,
		`set $t.D = 2.75`,
		`set $t.B = true`,
		`set $t.B = null`,
	)
	id := sh.vars["t"]
	o, _ := sh.base.Get(id)
	if v, _ := o.Attr("S"); !v.Equal(gom.String("hello")) {
		t.Errorf("S = %v", v)
	}
	if v, _ := o.Attr("N"); !v.Equal(gom.Integer(42)) {
		t.Errorf("N = %v", v)
	}
	if v, _ := o.Attr("D"); !v.Equal(gom.Decimal(2.75)) {
		t.Errorf("D = %v", v)
	}
	if v, _ := o.Attr("B"); v != nil {
		t.Errorf("B = %v, want NULL", v)
	}
}

func TestShellSaveLoad(t *testing.T) {
	var buf bytes.Buffer
	sh := newTestShell(&buf)
	file := t.TempDir() + "/db.json"
	runScript(t, sh, &buf,
		`type CITY is [Name: STRING];`,
		`new CITY as $c`,
		`set $c.Name = "Bonn"`,
		`save `+file,
	)
	// Fresh shell loads the dump.
	var buf2 bytes.Buffer
	sh2 := newTestShell(&buf2)
	out := runScript(t, sh2, &buf2,
		`load `+file,
		`extent CITY`,
	)
	if !strings.Contains(out, `"Bonn"`) {
		t.Errorf("restored object missing:\n%s", out)
	}
	if err := sh2.exec(`load /nonexistent/file.json`); err == nil {
		t.Error("load of missing file accepted")
	}
}

func TestShellExplainAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	sh := newTestShell(&buf)
	out := runScript(t, sh, &buf,
		`type CITY is [Name: STRING];`,
		`type PERSON is [Name: STRING, Lives: CITY];`,
		`type PEOPLE is {PERSON};`,
		`new PEOPLE as $Everyone`,
		`new CITY as $c`,
		`set $c.Name = "Karlsruhe"`,
		`new PERSON as $p`,
		`set $p.Name = "Alfons"`,
		`set $p.Lives = $c`,
		`insert $p into $Everyone`,
		`index full binary on PERSON.Lives.Name`,
		`\explain select p.Name from p in Everyone where p.Lives.Name = "Karlsruhe"`,
		`\explain analyze select p.Name from p in Everyone where p.Lives.Name = "Karlsruhe"`,
		`\metrics`,
	)
	for _, want := range []string{
		"strategy: asr",
		"predicted",
		"index pages: predicted",
		"rows: 1",
		"# TYPE query_runs_total counter",
		`query_runs_total{strategy="asr"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := sh.exec(`\explain nonsense`); err == nil {
		t.Error("explain of unparsable query accepted")
	}
}

// TestShellBackupRestore round-trips \save → \backup → \restore → \open:
// a durable session is backed up online, the backup restored to a new
// base (no archive history needed for a quiesced chain), and the
// reopened session answers with the backed-up state — not with a
// mutation made after the backup.
func TestShellBackupRestore(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	sh := newTestShell(&buf)
	out := runScript(t, sh, &buf,
		`type CITY is [Name: STRING];`,
		`type PERSON is [Name: STRING, Lives: CITY];`,
		`type PEOPLE is {PERSON};`,
		`new PEOPLE as $Everyone`,
		`new CITY as $c`,
		`set $c.Name = "Karlsruhe"`,
		`new PERSON as $p`,
		`set $p.Name = "Alfons"`,
		`set $p.Lives = $c`,
		`insert $p into $Everyone`,
		`index full binary on PERSON.Lives.Name`,
		// Bind Everyone into the base (selects do this lazily) so the
		// dump inside the backup carries the collection var.
		`select p.Name from p in Everyone where p.Lives.Name = "Karlsruhe"`,
		`\save `+dir+`/db`,
		`\backup `+dir+`/bk`,
		// Mutate after the backup: the restored base must not see this.
		`set $p.Name = "Bernhard"`,
		`\checkpoint`,
	)
	if !strings.Contains(out, "backed up") {
		t.Fatalf("no backup confirmation:\n%s", out)
	}
	sh.closeDurable()

	var buf2 bytes.Buffer
	sh2 := newTestShell(&buf2)
	out2 := runScript(t, sh2, &buf2,
		`\restore `+dir+`/bk `+dir+`/archive `+dir+`/restored`,
		`\open `+dir+`/restored`,
		`select p.Name from p in Everyone where p.Lives.Name = "Karlsruhe"`,
	)
	if !strings.Contains(out2, "restored "+dir+"/restored") {
		t.Fatalf("no restore confirmation:\n%s", out2)
	}
	if !strings.Contains(out2, `"Alfons"`) || strings.Contains(out2, `"Bernhard"`) {
		t.Errorf("restored base has the wrong state:\n%s", out2)
	}

	// Misuse is typed, not a crash.
	var buf3 bytes.Buffer
	sh3 := newTestShell(&buf3)
	if err := sh3.exec(`\backup ` + dir + `/nope`); err == nil {
		t.Error(`\backup without a durable session accepted`)
	}
	if err := sh3.exec(`\restore ` + dir + `/bk`); err == nil {
		t.Error(`\restore with missing arguments accepted`)
	}
	if err := sh3.exec(`\restore ` + dir + `/bk ` + dir + `/archive ` + dir + `/x notanumber`); err == nil {
		t.Error(`\restore with a bad LSN accepted`)
	}
}
