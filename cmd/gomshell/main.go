// Command gomshell is a small interactive shell over the GOM object
// model and access support relations: define a schema, populate objects,
// declare indexes, and run path queries — the workflow of §2 and §3.
//
//	$ gomshell
//	gom> type PERSON is [Name: STRING, Lives: CITY];
//	gom> type CITY is [Name: STRING];
//	gom> new CITY as $c
//	gom> set $c.Name = "Karlsruhe"
//	gom> new PERSON as $p
//	gom> set $p.Lives = $c
//	gom> index full binary on PERSON.Lives.Name
//	gom> query backward "Karlsruhe" via PERSON.Lives.Name
//	gom> quit
//
// A script can be piped on stdin; see examples/ for scripted uses of the
// underlying API.
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"asr/internal/asr"
	"asr/internal/dump"
	"asr/internal/gom"
	"asr/internal/query"
	"asr/internal/storage"
	"asr/internal/telemetry"
)

type shell struct {
	schema  *gom.Schema
	base    *gom.ObjectBase
	manager *asr.Manager
	vars    map[string]gom.OID
	pending strings.Builder // accumulated type declarations
	out     *bufio.Writer

	// Durable session state (\save / \open): when dbPath is non-empty
	// the manager's pool is backed by a checksummed page file and WAL
	// at dbPath+".pages" / dbPath+".pages.wal".
	dbPath string
	fdisk  *storage.FileDisk
	wal    *storage.WAL
}

func main() {
	sh := &shell{
		vars: map[string]gom.OID{},
		out:  bufio.NewWriter(os.Stdout),
	}
	for _, arg := range os.Args[1:] {
		if arg == "-h" || arg == "-help" || arg == "--help" {
			fmt.Print("gomshell — interactive shell over the GOM object model and access support relations.\n" +
				"Reads commands from stdin (pipe a script, or type at the gom> prompt).\n\n")
			sh.out = bufio.NewWriter(os.Stdout)
			sh.help()
			sh.out.Flush()
			return
		}
		fmt.Fprintf(os.Stderr, "gomshell: unknown argument %q (try -h)\n", arg)
		os.Exit(2)
	}
	sh.reset()
	interactive := isTerminal()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if interactive {
			fmt.Fprint(sh.out, "gom> ")
			sh.out.Flush()
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := sh.exec(line); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		}
		sh.out.Flush()
	}
	sh.out.Flush()
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func (sh *shell) reset() {
	sh.closeDurable()
	sh.schema = gom.NewSchema()
	sh.base = gom.NewObjectBase(sh.schema)
	sh.manager = asr.NewManager(sh.base, storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU))
}

// closeDurable releases the file-backed storage of a \save / \open
// session, returning the shell to in-memory semantics.
func (sh *shell) closeDurable() {
	if sh.wal != nil {
		sh.wal.Close()
		sh.wal = nil
	}
	if sh.fdisk != nil {
		sh.fdisk.Close()
		sh.fdisk = nil
	}
	sh.dbPath = ""
}

func (sh *shell) exec(line string) error {
	fields := strings.Fields(line)
	if strings.EqualFold(fields[0], "select") {
		return sh.cmdSelect(line)
	}
	switch fields[0] {
	case "help":
		sh.help()
		return nil
	case "type", "var":
		// Accumulate declarations; re-parse the whole schema each time so
		// forward references across commands work. Objects survive only
		// when the schema is extended, so declare types before data.
		sh.pending.WriteString(line)
		sh.pending.WriteString("\n")
		schema, vars, err := gom.ParseSchema(sh.pending.String())
		if err != nil {
			// Roll back the failed declaration.
			s := sh.pending.String()
			sh.pending.Reset()
			sh.pending.WriteString(strings.TrimSuffix(s, line+"\n"))
			return err
		}
		if sh.base.Count() > 0 {
			return fmt.Errorf("declare all types before creating objects")
		}
		sh.closeDurable()
		sh.schema = schema
		sh.base = gom.NewObjectBase(schema)
		sh.manager = asr.NewManager(sh.base, storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU))
		for _, v := range vars {
			fmt.Fprintf(sh.out, "declared var %s: %s (bind with 'new %s as $%s')\n",
				v.Name, v.Type.Name(), v.Type.Name(), v.Name)
		}
		return nil
	case "new":
		return sh.cmdNew(fields[1:])
	case "set":
		return sh.cmdSet(line)
	case "insert":
		return sh.cmdInsert(fields[1:])
	case "show":
		return sh.cmdShow(fields[1:])
	case "extent":
		return sh.cmdExtent(fields[1:])
	case "schema":
		for _, t := range sh.schema.Types() {
			if t.Kind() != gom.AtomicType {
				fmt.Fprintln(sh.out, t.Definition())
			}
		}
		return nil
	case "index":
		return sh.cmdIndex(fields[1:])
	case "query":
		return sh.cmdQuery(fields[1:])
	case "save":
		return sh.cmdSave(fields[1:])
	case "load":
		return sh.cmdLoad(fields[1:])
	case `\save`:
		return sh.cmdSaveBase(fields[1:])
	case `\open`:
		return sh.cmdOpenBase(fields[1:])
	case `\checkpoint`:
		return sh.cmdCheckpoint()
	case `\backup`:
		return sh.cmdBackup(fields[1:])
	case `\restore`:
		return sh.cmdRestore(fields[1:])
	case `\metrics`:
		_, err := telemetry.Default().WriteTo(sh.out)
		return err
	case `\pool`:
		return sh.cmdPool()
	case `\explain`:
		return sh.cmdExplain(strings.TrimSpace(strings.TrimPrefix(line, `\explain`)))
	default:
		return fmt.Errorf("unknown command %q (try 'help')", fields[0])
	}
}

func (sh *shell) help() {
	fmt.Fprint(sh.out, `commands:
  type NAME is [A: T, ...];        declare a tuple type (also {T}, <T>, supertypes (...))
  var NAME: TYPE;                  declare a schema-level collection variable
  new TYPE as $x                   instantiate and bind a variable
  set $x.Attr = VALUE              assign ($y, "str", 42, 3.14, true, null)
  insert $y into $x                insert into a set object
  show $x                          print an object
  extent TYPE                      list instances
  schema                           print declared types
  index EXT DEC on TYPE.A.B...     build an ASR (EXT: can|full|left|right; DEC: binary|none)
  query forward $x via TYPE.A.B    objects reachable from $x
  query backward VALUE via ...     anchors reaching VALUE
  select p from v in Var where ... SQL-like query (paper syntax, §2.2/2.3)
  \explain [analyze] select ...    strategy + cost-model prediction; with
                                   analyze, run it and report predicted vs actual
  \metrics                         dump the telemetry registry (Prometheus text)
  \pool                            buffer-pool shard layout and per-shard stats
  save FILE / load FILE            dump or restore the object base (JSON)
  \save BASE                       persist the whole session durably: objects to
                                   BASE.gom, index pages to BASE.pages (+ WAL),
                                   index topology to BASE.manifest
  \open BASE                       crash-recover BASE.pages via the WAL and
                                   reopen the session (objects, indexes, vars)
  \checkpoint                      flush dirty pages, sync, truncate the WAL
  \backup DIR                      online backup of the durable session into DIR
                                   (page file + manifest + dump + watermarks)
  \restore BK ARCH BASE [LSN]      lay backup BK down at BASE and replay the WAL
                                   archive ARCH up to LSN (omit: everything);
                                   then \open BASE
  help                             this list
  quit (or exit)                   leave the shell; lines starting -- or # are comments

docs: docs/ARCHITECTURE.md (package map), docs/OBSERVABILITY.md (\explain,
      \metrics), docs/ROBUSTNESS.md (\save/\open/\checkpoint, recovery),
      docs/SERVICE.md (serve a saved base with gomd -db BASE)
`)
}

func (sh *shell) cmdNew(args []string) error {
	if len(args) != 3 || args[1] != "as" || !strings.HasPrefix(args[2], "$") {
		return fmt.Errorf("usage: new TYPE as $x")
	}
	t, ok := sh.schema.Lookup(args[0])
	if !ok {
		return fmt.Errorf("unknown type %q", args[0])
	}
	o, err := sh.base.New(t)
	if err != nil {
		return err
	}
	sh.vars[args[2][1:]] = o.ID()
	fmt.Fprintf(sh.out, "%s = %s\n", args[2], o.ID())
	return nil
}

// parseValue interprets a literal or $variable.
func (sh *shell) parseValue(tok string) (gom.Value, error) {
	switch {
	case tok == "null":
		return nil, nil
	case tok == "true":
		return gom.Bool(true), nil
	case tok == "false":
		return gom.Bool(false), nil
	case strings.HasPrefix(tok, "$"):
		id, ok := sh.vars[tok[1:]]
		if !ok {
			return nil, fmt.Errorf("unbound variable %s", tok)
		}
		return gom.Ref(id), nil
	case strings.HasPrefix(tok, `"`):
		s, err := strconv.Unquote(tok)
		if err != nil {
			return nil, fmt.Errorf("bad string literal %s", tok)
		}
		return gom.String(s), nil
	case strings.ContainsAny(tok, "."):
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %s", tok)
		}
		return gom.Decimal(f), nil
	default:
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad literal %s", tok)
		}
		return gom.Integer(n), nil
	}
}

func (sh *shell) cmdSet(line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "set"))
	eq := strings.Index(rest, "=")
	if eq < 0 {
		return fmt.Errorf("usage: set $x.Attr = VALUE")
	}
	lhs := strings.TrimSpace(rest[:eq])
	rhs := strings.TrimSpace(rest[eq+1:])
	dot := strings.Index(lhs, ".")
	if !strings.HasPrefix(lhs, "$") || dot < 0 {
		return fmt.Errorf("usage: set $x.Attr = VALUE")
	}
	id, ok := sh.vars[lhs[1:dot]]
	if !ok {
		return fmt.Errorf("unbound variable %s", lhs[:dot])
	}
	v, err := sh.parseValue(rhs)
	if err != nil {
		return err
	}
	return sh.base.SetAttr(id, lhs[dot+1:], v)
}

func (sh *shell) cmdInsert(args []string) error {
	if len(args) != 3 || args[1] != "into" {
		return fmt.Errorf("usage: insert VALUE into $set")
	}
	v, err := sh.parseValue(args[0])
	if err != nil {
		return err
	}
	set, err := sh.parseValue(args[2])
	if err != nil {
		return err
	}
	ref, ok := set.(gom.Ref)
	if !ok {
		return fmt.Errorf("%s is not an object", args[2])
	}
	return sh.base.InsertIntoSet(ref.OID(), v)
}

func (sh *shell) cmdShow(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: show $x")
	}
	v, err := sh.parseValue(args[0])
	if err != nil {
		return err
	}
	ref, ok := v.(gom.Ref)
	if !ok {
		fmt.Fprintln(sh.out, gom.ValueString(v))
		return nil
	}
	o, ok := sh.base.Get(ref.OID())
	if !ok {
		return fmt.Errorf("object %s deleted", ref.OID())
	}
	fmt.Fprintln(sh.out, o.String())
	return nil
}

func (sh *shell) cmdExtent(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: extent TYPE")
	}
	t, ok := sh.schema.Lookup(args[0])
	if !ok {
		return fmt.Errorf("unknown type %q", args[0])
	}
	for _, id := range sh.base.Extent(t, true) {
		o, _ := sh.base.Get(id)
		fmt.Fprintln(sh.out, o.String())
	}
	return nil
}

// resolvePathArg parses TYPE.A.B.C into a path expression.
func (sh *shell) resolvePathArg(arg string) (*gom.PathExpression, error) {
	parts := strings.Split(arg, ".")
	if len(parts) < 2 {
		return nil, fmt.Errorf("path must be TYPE.Attr[.Attr...]")
	}
	t, ok := sh.schema.Lookup(parts[0])
	if !ok {
		return nil, fmt.Errorf("unknown type %q", parts[0])
	}
	return gom.ResolvePath(t, parts[1:]...)
}

func (sh *shell) cmdIndex(args []string) error {
	if len(args) != 4 || args[2] != "on" {
		return fmt.Errorf("usage: index EXT DEC on TYPE.A.B...")
	}
	ext, err := asr.ParseExtension(args[0])
	if err != nil {
		return err
	}
	path, err := sh.resolvePathArg(args[3])
	if err != nil {
		return err
	}
	m := path.Arity() - 1
	var dec asr.Decomposition
	switch args[1] {
	case "binary":
		dec = asr.BinaryDecomposition(m)
	case "none":
		dec = asr.NoDecomposition(m)
	default:
		return fmt.Errorf("decomposition %q, want binary|none", args[1])
	}
	ix, err := sh.manager.CreateIndex(path, ext, dec)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "built %s\n", ix)
	return nil
}

func (sh *shell) cmdQuery(args []string) error {
	if len(args) != 4 || args[2] != "via" {
		return fmt.Errorf("usage: query forward|backward VALUE via TYPE.A.B...")
	}
	path, err := sh.resolvePathArg(args[3])
	if err != nil {
		return err
	}
	v, err := sh.parseValue(args[1])
	if err != nil {
		return err
	}
	var results []gom.Value
	switch args[0] {
	case "forward":
		results, err = sh.manager.QueryForward(path, 0, path.Len(), v)
	case "backward":
		results, err = sh.manager.QueryBackward(path, 0, path.Len(), v)
	default:
		return fmt.Errorf("query kind %q, want forward|backward", args[0])
	}
	if err != nil {
		return err
	}
	if len(results) == 0 {
		fmt.Fprintln(sh.out, "(no results)")
		return nil
	}
	for _, r := range results {
		if ref, ok := r.(gom.Ref); ok {
			if o, live := sh.base.Get(ref.OID()); live {
				fmt.Fprintln(sh.out, o.String())
				continue
			}
		}
		fmt.Fprintln(sh.out, gom.ValueString(r))
	}
	return nil
}

// bindCollections binds collections named in from-clauses — which refer
// to shell variables — as database vars so the query engine can resolve
// them.
func (sh *shell) bindCollections(q *query.Query) error {
	for _, r := range q.Ranges {
		if r.Collection == "" {
			continue
		}
		if _, ok := sh.base.Var(r.Collection); ok {
			continue
		}
		if id, ok := sh.vars[r.Collection]; ok {
			if err := sh.base.BindVar(r.Collection, id); err != nil {
				return err
			}
		}
	}
	return nil
}

// cmdExplain reports the strategy and cost-model prediction for a
// select query; with the analyze keyword it also runs the query and
// reports predicted versus measured access counts.
func (sh *shell) cmdExplain(rest string) error {
	analyze := false
	if f := strings.Fields(rest); len(f) > 0 && strings.EqualFold(f[0], "analyze") {
		analyze = true
		rest = strings.TrimSpace(rest[len(f[0]):])
	}
	q, err := query.Parse(rest)
	if err != nil {
		return err
	}
	if err := sh.bindCollections(q); err != nil {
		return err
	}
	eng := query.New(sh.base, sh.manager)
	if analyze {
		a, err := eng.ExplainAnalyze(context.Background(), q)
		if err != nil {
			return err
		}
		fmt.Fprint(sh.out, a.String())
		return nil
	}
	x, err := eng.Explain(q)
	if err != nil {
		return err
	}
	fmt.Fprint(sh.out, x.String())
	return nil
}

// cmdPool prints the buffer pool's shard layout and per-shard counters,
// plus the aggregate — the interactive view of what ShardStats exposes
// to telemetry.
func (sh *shell) cmdPool() error {
	pool := sh.manager.Pool()
	fmt.Fprintf(sh.out, "shards: %d  resident pages: %d\n", pool.NumShards(), pool.Resident())
	fmt.Fprintf(sh.out, "%-6s %9s %9s %9s %9s %9s %9s\n",
		"shard", "accesses", "hits", "misses", "evicts", "wbacks", "pins")
	for i, s := range pool.ShardStats() {
		fmt.Fprintf(sh.out, "%-6d %9d %9d %9d %9d %9d %9d\n",
			i, s.LogicalAccesses, s.Hits, s.Misses, s.Evictions, s.WriteBacks, s.Pins)
	}
	t := pool.Stats()
	fmt.Fprintf(sh.out, "%-6s %9d %9d %9d %9d %9d %9d\n",
		"total", t.LogicalAccesses, t.Hits, t.Misses, t.Evictions, t.WriteBacks, t.Pins)
	return nil
}

// cmdSelect evaluates a select-from-where query in the paper's notation,
// routing predicates through declared indexes when possible.
func (sh *shell) cmdSelect(line string) error {
	q, err := query.Parse(line)
	if err != nil {
		return err
	}
	if err := sh.bindCollections(q); err != nil {
		return err
	}
	eng := query.New(sh.base, sh.manager)
	res, err := eng.Run(q)
	if err != nil {
		return err
	}
	if len(res.Values) == 0 {
		fmt.Fprintln(sh.out, "(no results)")
	}
	for _, v := range res.Values {
		if ref, ok := v.(gom.Ref); ok {
			if o, live := sh.base.Get(ref.OID()); live {
				fmt.Fprintln(sh.out, o.String())
				continue
			}
		}
		fmt.Fprintln(sh.out, gom.ValueString(v))
	}
	fmt.Fprintf(sh.out, "plan: %s\n", res.Plan)
	return nil
}

// cmdSave dumps the object base (schema, objects, vars) to a JSON file.
func (sh *shell) cmdSave(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: save FILE")
	}
	f, err := os.Create(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dump.Save(sh.base, f); err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "saved %d objects to %s\n", sh.base.Count(), args[0])
	return nil
}

// cmdLoad restores an object base from a JSON dump; indexes must be
// re-declared afterwards (they are derived data).
func (sh *shell) cmdLoad(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: load FILE")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	ob, err := dump.Load(f)
	if err != nil {
		return err
	}
	sh.closeDurable()
	sh.base = ob
	sh.schema = ob.Schema()
	sh.manager = asr.NewManager(ob, storage.NewBufferPool(storage.NewDisk(0), 0, storage.LRU))
	sh.vars = map[string]gom.OID{}
	for _, name := range ob.VarNames() {
		if id, ok := ob.Var(name); ok {
			sh.vars[name] = id
		}
	}
	sh.pending.Reset()
	fmt.Fprintf(sh.out, "loaded %d objects from %s (re-declare indexes with 'index')\n", ob.Count(), args[0])
	return nil
}

// cmdSaveBase persists the whole session durably under BASE: the object
// base to BASE.gom, the index pages to a checksummed page file
// BASE.pages with write-ahead log BASE.pages.wal, and the index
// topology to BASE.manifest. A session not already backed by BASE is
// migrated first: a fresh page file is created and every index is
// rebuilt onto it, after which the session keeps running file-backed —
// later maintenance is WAL-logged and survives a crash (see \open).
func (sh *shell) cmdSaveBase(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf(`usage: \save BASE`)
	}
	base := args[0]
	if sh.dbPath != base {
		if err := sh.migrateTo(base); err != nil {
			return err
		}
	}
	if err := sh.manager.SaveTo(base + ".manifest"); err != nil {
		return err
	}
	f, err := os.Create(base + ".gom")
	if err != nil {
		return err
	}
	if err := dump.Save(sh.base, f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "saved %d objects and %d indexes to %s.{gom,pages,manifest}\n",
		sh.base.Count(), len(sh.manager.Indexes()), base)
	return nil
}

// migrateTo moves the session onto a file-backed pool at base,
// rebuilding every index there (same path, extension, decomposition).
func (sh *shell) migrateTo(base string) error {
	// \save overwrites: start the page file and its log from scratch.
	os.Remove(base + ".pages")
	os.Remove(base + ".pages.wal")
	fd, err := storage.OpenFileDisk(base+".pages", 0)
	if err != nil {
		return err
	}
	wal, err := storage.OpenWAL(base + ".pages.wal")
	if err != nil {
		fd.Close()
		return err
	}
	pool := storage.NewBufferPool(fd, 0, storage.LRU)
	pool.AttachWAL(wal)
	old := sh.manager
	mgr := asr.NewManager(sh.base, pool)
	for _, ix := range old.Indexes() {
		if _, err := mgr.CreateIndex(ix.Path(), ix.Extension(), ix.Decomposition()); err != nil {
			for _, nix := range mgr.Indexes() {
				mgr.DropIndex(nix)
			}
			wal.Close()
			fd.Close()
			return err
		}
	}
	for _, ix := range old.Indexes() {
		if err := old.DropIndex(ix); err != nil {
			return err
		}
	}
	sh.closeDurable()
	sh.manager = mgr
	sh.dbPath, sh.fdisk, sh.wal = base, fd, wal
	return nil
}

// cmdOpenBase reopens a session saved with \save: the page file is
// crash-recovered through its WAL (committed maintenance transactions
// are redone, incomplete ones discarded), the object base is loaded
// from BASE.gom, and the indexes are reconstructed from BASE.manifest
// without rebuilding their trees.
func (sh *shell) cmdOpenBase(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf(`usage: \open BASE`)
	}
	base := args[0]
	fd, wal, info, err := storage.Recover(base + ".pages")
	if err != nil {
		return err
	}
	f, err := os.Open(base + ".gom")
	if err != nil {
		wal.Close()
		fd.Close()
		return err
	}
	ob, err := dump.Load(f)
	f.Close()
	if err != nil {
		wal.Close()
		fd.Close()
		return err
	}
	pool := storage.NewBufferPool(fd, 0, storage.LRU)
	pool.AttachWAL(wal)
	mgr, err := asr.OpenFrom(ob, pool, base+".manifest")
	if err != nil {
		wal.Close()
		fd.Close()
		return err
	}
	sh.closeDurable()
	sh.base, sh.schema, sh.manager = ob, ob.Schema(), mgr
	sh.vars = map[string]gom.OID{}
	for _, name := range ob.VarNames() {
		if id, ok := ob.Var(name); ok {
			sh.vars[name] = id
		}
	}
	sh.pending.Reset()
	sh.dbPath, sh.fdisk, sh.wal = base, fd, wal
	fmt.Fprintf(sh.out, "opened %s: %d objects, %d indexes (recovery: %d txns committed, %d discarded, %d pages redone)\n",
		base, ob.Count(), len(mgr.Indexes()), info.CommittedTxns, info.DiscardedTxns, info.RedonePages)
	if info.WALTailDamaged {
		fmt.Fprintln(sh.out, "note: WAL tail was torn; incomplete transactions discarded")
	}
	if n := len(info.QuarantinedPages); n > 0 {
		fmt.Fprintf(sh.out, "warning: %d pages still corrupt after redo; affected indexes are quarantined (run Repair)\n", n)
	}
	quarantined := 0
	for _, ix := range mgr.Indexes() {
		if ix.Quarantined() {
			quarantined++
		}
	}
	if quarantined > 0 {
		fmt.Fprintf(sh.out, "warning: %d indexes quarantined; queries fall back until repaired\n", quarantined)
	}
	return nil
}

// cmdCheckpoint flushes every dirty page to the device, syncs it, and —
// in a durable session with no transaction in flight — truncates the
// WAL, bounding the work a future \open has to redo.
func (sh *shell) cmdCheckpoint() error {
	if err := sh.manager.Pool().Checkpoint(); err != nil {
		return err
	}
	if sh.wal == nil {
		fmt.Fprintln(sh.out, "checkpoint complete (in-memory pool, no WAL)")
		return nil
	}
	st := sh.wal.Stats()
	fmt.Fprintf(sh.out, "checkpoint complete: wal records=%d commits=%d syncs=%d truncations=%d\n",
		st.Records, st.Commits, st.Syncs, st.Truncations)
	return nil
}

// cmdBackup streams an online backup of the durable session into DIR:
// the page file copied under per-page latches, plus the manifest and
// logical dump (re-saved first, so the chain reflects the session as
// it stands). Restore it with \restore.
func (sh *shell) cmdBackup(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf(`usage: \backup DIR`)
	}
	if sh.dbPath == "" {
		return fmt.Errorf(`\backup needs a durable session (\save or \open first)`)
	}
	if err := sh.manager.SaveTo(sh.dbPath + ".manifest"); err != nil {
		return err
	}
	f, err := os.Create(sh.dbPath + ".gom")
	if err != nil {
		return err
	}
	if err := dump.Save(sh.base, f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := storage.Backup(sh.fdisk, sh.wal, args[0], map[string]string{
		"manifest": sh.dbPath + ".manifest",
		"gom":      sh.dbPath + ".gom",
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "backed up %d pages (%d bytes, %d torn) to %s; watermarks %d..%d\n",
		info.Pages, info.Bytes, info.TornPages, info.Dir, info.StartLSN, info.EndLSN)
	return nil
}

// cmdRestore performs point-in-time recovery outside any session: it
// lays the backup down at BASE and replays the WAL archive up to the
// target LSN (omitted: everything archived). The restored base is then
// a normal durable base — \open BASE (or gomd -db BASE) runs recovery
// and routes anything the archive could not supply through quarantine
// → Repair.
func (sh *shell) cmdRestore(args []string) error {
	if len(args) != 3 && len(args) != 4 {
		return fmt.Errorf(`usage: \restore BACKUP_DIR ARCHIVE_DIR BASE [TARGET_LSN]`)
	}
	var target uint64
	if len(args) == 4 {
		n, err := strconv.ParseUint(args[3], 10, 64)
		if err != nil {
			return fmt.Errorf("target LSN %q: %w", args[3], err)
		}
		target = n
	}
	info, err := storage.Restore(args[0], args[1], args[2], target)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "restored %s to LSN %d: %d records applied, %d pages healed\n",
		args[2], info.TargetLSN, info.RecordsApplied, info.HealedPages)
	if n := len(info.PastTargetPages); n > 0 {
		fmt.Fprintf(sh.out, "%d pages were past the target and are quarantined for Repair\n", n)
	}
	if n := len(info.QuarantinedPages); n > 0 {
		fmt.Fprintf(sh.out, "WARNING: %d pages unhealable from the archive (quarantined)\n", n)
	}
	fmt.Fprintf(sh.out, `open it with \open %s (or serve it: gomd -db %s)`+"\n", args[2], args[2])
	return nil
}
