package main

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"asr/internal/asr"
	"asr/internal/dump"
	"asr/internal/server"
	"asr/internal/server/client"
	"asr/internal/storage"
)

func TestParseFlags(t *testing.T) {
	var errw bytes.Buffer
	if _, err := parseFlags(nil, &errw); err == nil {
		t.Fatal("no mode should be rejected")
	}
	if _, err := parseFlags([]string{"-demo", "-load", "x.gom"}, &errw); err == nil {
		t.Fatal("two modes should be rejected")
	}
	if _, err := parseFlags([]string{"-demo", "-index", "full:binary:T0.Payload"}, &errw); err == nil {
		t.Fatal("-index without -load should be rejected")
	}
	if _, err := parseFlags([]string{"-db", "base", "-chaos-disk", "0.5"}, &errw); err == nil {
		t.Fatal("-chaos-disk with -db should be rejected")
	}
	if _, err := parseFlags([]string{"-demo", "-archive-dir", "arch"}, &errw); err == nil {
		t.Error("-archive-dir without -db should fail")
	}
	if _, err := parseFlags([]string{"-demo", "-scrub-interval", "1m"}, &errw); err == nil {
		t.Error("-scrub-interval without -db should fail")
	}
	if _, err := parseFlags([]string{"-demo", "-chaos-disk", "1.5"}, &errw); err == nil {
		t.Fatal("-chaos-disk out of [0,1] should be rejected")
	}
	o, err := parseFlags([]string{"-load", "x.gom", "-index", "a", "-index", "b", "-max-inflight", "7"}, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.indexes) != 2 || o.maxInflight != 7 {
		t.Fatalf("parsed %+v", o)
	}
	// -h prints usage with doc cross-links and all modes.
	errw.Reset()
	parseFlags([]string{"-h"}, &errw)
	usage := errw.String()
	for _, want := range []string{"-demo", "-load", "-db", "docs/SERVICE.md", "docs/OBSERVABILITY.md", "SIGTERM"} {
		if !strings.Contains(usage, want) {
			t.Errorf("usage missing %q", want)
		}
	}
}

// TestGomdSmoke is the server-smoke CI gate: boot gomd in-process on
// ephemeral ports with a demo database, hit it with a 30-connection
// query burst, deliver a real SIGTERM mid-traffic, and require (a) every
// request ends in a correct result or a typed rejection, (b) at least
// one query succeeded, (c) /metrics served server counters, and (d) the
// daemon exits cleanly. Run under -race by `make server-smoke`.
func TestGomdSmoke(t *testing.T) {
	opts, err := parseFlags([]string{
		"-demo", "-scale", "2",
		"-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0",
		"-max-inflight", "64", "-drain-timeout", "10s",
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}

	var out lockedBuffer
	ready := make(chan *server.Server, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(opts, &out, func(s *server.Server) { ready <- s })
	}()
	var srv *server.Server
	select {
	case srv = <-ready:
	case err := <-runErr:
		t.Fatalf("gomd exited before ready: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("gomd never became ready")
	}

	// Establish the oracle once over the wire, then burst.
	const sql = `select x.Payload from x in All where x.Next.Next.Next.Payload = "L3-1"`
	c0, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := c0.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	c0.Close()
	wantVals := strings.Join(oracle.Values, "\n")

	const conns = 30
	var succeeded, rejected, failed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(srv.Addr())
			if err != nil {
				rejected.Add(1) // listener already closed by the drain
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := c.Query(context.Background(), sql)
				switch {
				case err == nil:
					if strings.Join(res.Values, "\n") != wantVals {
						failed.Add(1)
						return
					}
					succeeded.Add(1)
				case errors.Is(err, client.ErrShuttingDown),
					errors.Is(err, client.ErrOverloaded),
					errors.Is(err, client.ErrConnClosed):
					rejected.Add(1)
					return
				default:
					t.Errorf("untyped failure: %v", err)
					failed.Add(1)
					return
				}
			}
		}()
	}

	// Let traffic build, scrape metrics, then deliver a real SIGTERM.
	time.Sleep(100 * time.Millisecond)
	resp, err := http.Get("http://" + srv.AdminAddr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(metrics.String(), "server_sessions_total") {
		t.Error("/metrics missing server series")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("gomd exit: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("gomd did not drain within 30s\n%s", out.String())
	}
	close(stop)
	wg.Wait()

	if failed.Load() > 0 {
		t.Fatalf("%d requests lost or diverged", failed.Load())
	}
	if succeeded.Load() == 0 {
		t.Fatal("no query succeeded before drain")
	}
	log := out.String()
	for _, want := range []string{"demo database", "listening on", "received terminated, draining", "checkpointing on drain", "clean shutdown"} {
		if !strings.Contains(log, want) {
			t.Errorf("gomd log missing %q:\n%s", want, log)
		}
	}
	t.Logf("smoke: %d completed, %d typed rejections across %d connections", succeeded.Load(), rejected.Load(), conns)
}

// TestGomdLoadMode boots gomd from a logical dump with a -index flag
// and queries it over the wire.
func TestGomdLoadMode(t *testing.T) {
	d, err := server.DemoDatabase(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.gom")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dump.Save(d.Base, f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	opts, err := parseFlags([]string{
		"-load", path, "-index", "full:binary:T0.Next.Next.Next.Payload",
		"-addr", "127.0.0.1:0", "-admin", "",
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	var out lockedBuffer
	ready := make(chan *server.Server, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(opts, &out, func(s *server.Server) { ready <- s })
	}()
	var srv *server.Server
	select {
	case srv = <-ready:
	case err := <-runErr:
		t.Fatalf("gomd exited before ready: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("gomd never became ready")
	}
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), `select x.Payload from x in All where x.Next.Next.Next.Payload = "L3-1"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "via ASR") {
		t.Fatalf("-index was not built: plan %q", res.Plan)
	}
	c.Close()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("gomd exit: %v", err)
	}
}

// TestGomdChaosDisk boots gomd with -chaos-disk 1 — every page read
// faults — and requires the failure contract end to end: index-routed
// queries fail with the typed INTERNAL sentinel (never a crash or a
// hang), traversal queries (which touch no index pages) still answer,
// and the daemon drains cleanly afterward.
func TestGomdChaosDisk(t *testing.T) {
	opts, err := parseFlags([]string{
		"-demo", "-scale", "2", "-chaos-disk", "1", "-chaos-seed", "3",
		"-addr", "127.0.0.1:0", "-admin", "",
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	var out lockedBuffer
	ready := make(chan *server.Server, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(opts, &out, func(s *server.Server) { ready <- s })
	}()
	var srv *server.Server
	select {
	case srv = <-ready:
	case err := <-runErr:
		t.Fatalf("gomd exited before ready: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("gomd never became ready")
	}

	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The indexed query needs ASR pages; with p=1 every read faults.
	_, err = c.Query(context.Background(), `select x.Payload from x in All where x.Next.Next.Next.Payload = "L3-1"`)
	if !errors.Is(err, client.ErrInternal) {
		t.Fatalf("indexed query under disk faults = %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "injected") {
		t.Fatalf("INTERNAL response does not name the fault: %v", err)
	}

	// Traversal reads the in-memory object base only — still healthy.
	res, err := c.Query(context.Background(), `select x.Payload from x in All where x.Payload = "L0-1"`)
	if err != nil {
		t.Fatalf("traversal query under disk faults: %v", err)
	}
	if len(res.Values) != 1 {
		t.Fatalf("traversal result = %+v", res)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("gomd exit: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "CHAOS: injecting page-read faults") {
		t.Errorf("startup log missing chaos banner:\n%s", out.String())
	}
}

// lockedBuffer lets the daemon log from its goroutines while the test
// reads, without racing.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// saveDurableBase persists a demo database the way gomshell \save does
// (logical dump + page file + WAL + manifest) and returns its base path.
func saveDurableBase(t *testing.T, dir string) string {
	t.Helper()
	d, err := server.DemoDatabase(1, 17)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "db")
	fd, err := storage.OpenFileDisk(base+".pages", 0)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := storage.OpenWAL(base + ".pages.wal")
	if err != nil {
		t.Fatal(err)
	}
	pool := storage.NewBufferPool(fd, 0, storage.LRU)
	pool.AttachWAL(wal)
	mgr := asr.NewManager(d.Base, pool)
	for _, old := range d.Manager.Indexes() {
		if _, err := mgr.CreateIndex(old.Path(), old.Extension(), old.Decomposition()); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.SaveTo(base + ".manifest"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(base + ".gom")
	if err != nil {
		t.Fatal(err)
	}
	if err := dump.Save(d.Base, f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := pool.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wal.Close()
	fd.Close()
	return base
}

// TestGomdDurableBackupAndScrub boots gomd in -db mode with WAL
// archiving and a fast scrub cadence, takes an online backup over the
// admin endpoint while querying, and requires a healthy /healthz, a
// readable backup chain on disk, and a clean drain.
func TestGomdDurableBackupAndScrub(t *testing.T) {
	dir := t.TempDir()
	base := saveDurableBase(t, dir)

	opts, err := parseFlags([]string{
		"-db", base, "-archive-dir", filepath.Join(dir, "archive"),
		"-scrub-interval", "50ms",
		"-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0",
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	var out lockedBuffer
	ready := make(chan *server.Server, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(opts, &out, func(s *server.Server) { ready <- s })
	}()
	var srv *server.Server
	select {
	case srv = <-ready:
	case err := <-runErr:
		t.Fatalf("gomd exited before ready: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("gomd never became ready")
	}

	// Healthy before and while the scrubber runs.
	resp, err := http.Get("http://" + srv.AdminAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}

	// A real query keeps answering while the backup streams out.
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const sql = `select x.Payload from x in All where x.Next.Next.Next.Payload = "L3-1"`
	if _, err := c.Query(context.Background(), sql); err != nil {
		t.Fatal(err)
	}

	bdir := filepath.Join(dir, "bk")
	resp, err = http.Post("http://"+srv.AdminAddr()+"/backup?dest="+bdir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /backup = %d: %s", resp.StatusCode, body.String())
	}
	man, err := storage.ReadBackupManifest(bdir)
	if err != nil {
		t.Fatalf("backup chain unreadable: %v", err)
	}
	if man.NumPages == 0 {
		t.Fatalf("empty backup manifest: %+v", man)
	}
	if _, err := c.Query(context.Background(), sql); err != nil {
		t.Fatalf("query after backup: %v", err)
	}

	// Let at least one scrub pass complete before draining.
	time.Sleep(120 * time.Millisecond)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("gomd exit: %v\n%s", err, out.String())
	}
	log := out.String()
	for _, want := range []string{"archiving WAL segments", "integrity scrubber running", "online backup complete", "clean shutdown"} {
		if !strings.Contains(log, want) {
			t.Errorf("gomd log missing %q:\n%s", want, log)
		}
	}
}
