// Command gomd is the object-base server: it serves one database to
// many clients over the length-prefixed binary protocol of
// internal/server/wire (spec: docs/SERVICE.md), with admission control,
// graceful drain on SIGTERM/SIGINT, and an admin HTTP endpoint for
// Prometheus metrics and health checks.
//
// Exactly one database mode must be chosen:
//
//	gomd -demo                 generated demo database (see -scale, -seed)
//	gomd -load FILE.gom        logical dump (gomshell `save` / \save)
//	gomd -db BASE              durable base saved with gomshell \save:
//	                           BASE.{gom,pages,pages.wal,manifest};
//	                           crash-recovered on start, checkpointed on
//	                           drain and every -checkpoint interval
//
// Operational details — wire protocol, error codes, drain semantics,
// the runbook — are in docs/SERVICE.md; metrics in docs/OBSERVABILITY.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"asr/internal/server"
)

// stringsFlag collects a repeatable -index flag.
type stringsFlag []string

func (f *stringsFlag) String() string     { return strings.Join(*f, ",") }
func (f *stringsFlag) Set(s string) error { *f = append(*f, s); return nil }

type options struct {
	addr         string
	admin        string
	demo         bool
	scale        int
	seed         int64
	load         string
	db           string
	indexes      stringsFlag
	maxInflight  int
	workers      int
	checkpoint   time.Duration
	drainTimeout time.Duration
	name         string
}

func parseFlags(args []string, errw io.Writer) (options, error) {
	var o options
	fs := flag.NewFlagSet("gomd", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:7424", "query listener address")
	fs.StringVar(&o.admin, "admin", "127.0.0.1:7425", "admin HTTP address for /metrics, /healthz, /readyz (empty disables)")
	fs.BoolVar(&o.demo, "demo", false, "serve a generated demo database")
	fs.IntVar(&o.scale, "scale", 4, "demo database scale factor (with -demo)")
	fs.Int64Var(&o.seed, "seed", 42, "demo database generation seed (with -demo)")
	fs.StringVar(&o.load, "load", "", "serve a logical dump FILE.gom (build indexes with -index)")
	fs.StringVar(&o.db, "db", "", "serve a durable base saved with gomshell \\save (BASE.{gom,pages,pages.wal,manifest})")
	fs.Var(&o.indexes, "index", "index spec EXT:DEC:TYPE.A.B (can|full|left|right : binary|none), repeatable; with -load")
	fs.IntVar(&o.maxInflight, "max-inflight", 0, "max concurrently executing queries before shedding with OVERLOADED (0 = 2×GOMAXPROCS)")
	fs.IntVar(&o.workers, "workers", 1, "default per-query evaluation fan-out")
	fs.DurationVar(&o.checkpoint, "checkpoint", 5*time.Minute, "periodic checkpoint cadence for durable bases (0 = only on drain)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "max time to wait for in-flight queries on shutdown before canceling them")
	fs.StringVar(&o.name, "name", "gomd", "server name reported in handshakes and stats")
	fs.Usage = func() {
		fmt.Fprintf(errw, `gomd — object-base server (Access Support Relations engine)

usage: gomd (-demo | -load FILE.gom | -db BASE) [flags]

`)
		fs.PrintDefaults()
		fmt.Fprintf(errw, `
Stop with SIGTERM or SIGINT: gomd stops accepting work, answers every
admitted query, checkpoints durable state, then exits.

docs: docs/SERVICE.md (protocol + runbook), docs/ARCHITECTURE.md,
      docs/OBSERVABILITY.md (metrics), docs/ROBUSTNESS.md (recovery)
`)
	}
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	modes := 0
	for _, on := range []bool{o.demo, o.load != "", o.db != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fs.Usage()
		return o, errors.New("gomd: choose exactly one of -demo, -load, -db")
	}
	if len(o.indexes) > 0 && o.load == "" {
		return o, errors.New("gomd: -index only applies to -load (durable bases carry a manifest; -demo builds its own)")
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(opts, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// openDatabase builds the Database for the selected mode and returns a
// line describing it for the startup log.
func openDatabase(opts options) (*server.Database, string, error) {
	switch {
	case opts.demo:
		d, err := server.DemoDatabase(opts.scale, opts.seed)
		if err != nil {
			return nil, "", err
		}
		return d, fmt.Sprintf("demo database (scale %d, seed %d): %d objects, collection var All, indexed path T0.Next.Next.Next.Payload",
			opts.scale, opts.seed, d.Base.Count()), nil
	case opts.load != "":
		d, err := server.LoadDumpFile(opts.load, opts.indexes)
		if err != nil {
			return nil, "", err
		}
		return d, fmt.Sprintf("loaded %s: %d objects, %d indexes", opts.load, d.Base.Count(), len(d.Manager.Indexes())), nil
	default:
		d, info, err := server.OpenDurableBase(opts.db)
		if err != nil {
			return nil, "", err
		}
		desc := fmt.Sprintf("opened %s: %d objects, %d indexes (recovery: %d txns committed, %d discarded, %d pages redone)",
			opts.db, d.Base.Count(), len(d.Manager.Indexes()), info.CommittedTxns, info.DiscardedTxns, info.RedonePages)
		if info.WALTailDamaged {
			desc += "; WAL tail was torn, incomplete transactions discarded"
		}
		if n := len(info.QuarantinedPages); n > 0 {
			desc += fmt.Sprintf("; WARNING: %d pages quarantined, run Repair", n)
		}
		return d, desc, nil
	}
}

// run opens the database, serves it until SIGTERM/SIGINT, then drains.
// onReady, if non-nil, is called with the started server (tests use it
// to learn the ephemeral addresses).
func run(opts options, out io.Writer, onReady func(*server.Server)) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(out, time.Now().Format("2006-01-02T15:04:05.000Z07:00")+" "+format+"\n", args...)
	}

	d, desc, err := openDatabase(opts)
	if err != nil {
		return err
	}
	logf("gomd: %s", desc)

	s := server.New(d.Engine, d.Manager, server.Config{
		Addr:         opts.addr,
		AdminAddr:    opts.admin,
		MaxInflight:  opts.maxInflight,
		QueryWorkers: opts.workers,
		Name:         opts.name,
		Logf:         logf,
		OnDrain: func() error {
			logf("gomd: checkpointing on drain")
			return d.Checkpoint()
		},
	})
	if err := s.Start(); err != nil {
		d.Close()
		return err
	}
	if onReady != nil {
		onReady(s)
	}

	// Periodic checkpoints bound recovery replay time (durable bases;
	// a no-op for -demo and -load). See the runbook in docs/SERVICE.md.
	stopCheckpoints := make(chan struct{})
	checkpointsDone := make(chan struct{})
	go func() {
		defer close(checkpointsDone)
		if opts.checkpoint <= 0 {
			return
		}
		t := time.NewTicker(opts.checkpoint)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := d.Checkpoint(); err != nil {
					logf("gomd: periodic checkpoint failed: %v", err)
				}
			case <-stopCheckpoints:
				return
			}
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	sig := <-sigc
	logf("gomd: received %s, draining", sig)

	ctx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	drainErr := s.Shutdown(ctx)
	close(stopCheckpoints)
	<-checkpointsDone
	closeErr := d.Close()
	if drainErr == nil && closeErr == nil {
		logf("gomd: clean shutdown")
	}
	return errors.Join(drainErr, closeErr)
}
