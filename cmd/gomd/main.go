// Command gomd is the object-base server: it serves one database to
// many clients over the length-prefixed binary protocol of
// internal/server/wire (spec: docs/SERVICE.md), with admission control,
// graceful drain on SIGTERM/SIGINT, structured logs (-log-level,
// -log-format), a slow-query log (-slow-query), and an admin HTTP
// endpoint for Prometheus metrics, health checks, request traces, and
// live profiling.
//
// Exactly one database mode must be chosen:
//
//	gomd -demo                 generated demo database (see -scale, -seed)
//	gomd -load FILE.gom        logical dump (gomshell `save` / \save)
//	gomd -db BASE              durable base saved with gomshell \save:
//	                           BASE.{gom,pages,pages.wal,manifest};
//	                           crash-recovered on start, checkpointed on
//	                           drain and every -checkpoint interval
//
// Operational details — wire protocol, error codes, drain semantics,
// the runbook — are in docs/SERVICE.md; metrics in docs/OBSERVABILITY.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"asr/internal/server"
	"asr/internal/storage"
)

// stringsFlag collects a repeatable -index flag.
type stringsFlag []string

func (f *stringsFlag) String() string     { return strings.Join(*f, ",") }
func (f *stringsFlag) Set(s string) error { *f = append(*f, s); return nil }

type options struct {
	addr           string
	admin          string
	demo           bool
	scale          int
	seed           int64
	load           string
	db             string
	indexes        stringsFlag
	maxInflight    int
	workers        int
	checkpoint     time.Duration
	drainTimeout   time.Duration
	requestTimeout time.Duration
	idleTimeout    time.Duration
	name           string
	chaosDisk      float64
	chaosSeed      int64
	logLevel       string
	logFormat      string
	slowQuery      time.Duration
	archiveDir     string
	scrubInterval  time.Duration
}

func parseFlags(args []string, errw io.Writer) (options, error) {
	var o options
	fs := flag.NewFlagSet("gomd", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:7424", "query listener address")
	fs.StringVar(&o.admin, "admin", "127.0.0.1:7425", "admin HTTP address for /metrics, /healthz, /readyz, /traces, /slowlog, /debug/pprof (empty disables)")
	fs.BoolVar(&o.demo, "demo", false, "serve a generated demo database")
	fs.IntVar(&o.scale, "scale", 4, "demo database scale factor (with -demo)")
	fs.Int64Var(&o.seed, "seed", 42, "demo database generation seed (with -demo)")
	fs.StringVar(&o.load, "load", "", "serve a logical dump FILE.gom (build indexes with -index)")
	fs.StringVar(&o.db, "db", "", "serve a durable base saved with gomshell \\save (BASE.{gom,pages,pages.wal,manifest})")
	fs.Var(&o.indexes, "index", "index spec EXT:DEC:TYPE.A.B (can|full|left|right : binary|none), repeatable; with -load")
	fs.IntVar(&o.maxInflight, "max-inflight", 0, "max concurrently executing queries before shedding with OVERLOADED (0 = 2×GOMAXPROCS)")
	fs.IntVar(&o.workers, "workers", 1, "default per-query evaluation fan-out")
	fs.DurationVar(&o.checkpoint, "checkpoint", 5*time.Minute, "periodic checkpoint cadence for durable bases (0 = only on drain)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "max time to wait for in-flight queries on shutdown before canceling them")
	fs.DurationVar(&o.requestTimeout, "request-timeout", 0, "per-query server-side deadline; queries over it answer DEADLINE_EXCEEDED (0 disables)")
	fs.DurationVar(&o.idleTimeout, "idle-timeout", 0, "reap sessions idle this long with nothing in flight (0 disables)")
	fs.StringVar(&o.name, "name", "gomd", "server name reported in handshakes and stats")
	fs.Float64Var(&o.chaosDisk, "chaos-disk", 0, "inject transient page-read faults with this probability, 0..1 (resilience testing; with -demo or -load)")
	fs.Int64Var(&o.chaosSeed, "chaos-seed", 1, "seed for the -chaos-disk fault schedule")
	fs.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn, error")
	fs.StringVar(&o.logFormat, "log-format", "text", "log output format: text, json")
	fs.DurationVar(&o.slowQuery, "slow-query", time.Second, "record queries slower than this in the slow-query log (admin /slowlog; 0 disables)")
	fs.StringVar(&o.archiveDir, "archive-dir", "", "archive sealed WAL segments into this directory (with -db); required for POST /backup restores to arbitrary LSNs")
	fs.DurationVar(&o.scrubInterval, "scrub-interval", 5*time.Minute, "background integrity scrub cadence for durable bases (with -db; 0 disables)")
	fs.Usage = func() {
		fmt.Fprintf(errw, `gomd — object-base server (Access Support Relations engine)

usage: gomd (-demo | -load FILE.gom | -db BASE) [flags]

`)
		fs.PrintDefaults()
		fmt.Fprintf(errw, `
The admin endpoint (-admin) serves /metrics (Prometheus), /healthz,
/readyz, /traces (recent request spans), /slowlog (queries over
-slow-query), POST /backup?dest=DIR (online backup of a -db base), and
/debug/pprof (live profiling).

Durable bases (-db) also run a background integrity scrubber
(-scrub-interval) that heals corrupt pages from the WAL and its
archive (-archive-dir) and degrades /healthz when it cannot.

Stop with SIGTERM or SIGINT: gomd stops accepting work, answers every
admitted query, checkpoints durable state, then exits.

docs: docs/SERVICE.md (protocol + runbook), docs/ARCHITECTURE.md,
      docs/OBSERVABILITY.md (metrics), docs/ROBUSTNESS.md (recovery)
`)
	}
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	modes := 0
	for _, on := range []bool{o.demo, o.load != "", o.db != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fs.Usage()
		return o, errors.New("gomd: choose exactly one of -demo, -load, -db")
	}
	if len(o.indexes) > 0 && o.load == "" {
		return o, errors.New("gomd: -index only applies to -load (durable bases carry a manifest; -demo builds its own)")
	}
	if o.chaosDisk < 0 || o.chaosDisk > 1 {
		return o, errors.New("gomd: -chaos-disk must be a probability in [0, 1]")
	}
	if o.db == "" {
		explicit := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if explicit["archive-dir"] {
			return o, errors.New("gomd: -archive-dir only applies to -db (nothing to archive without a WAL)")
		}
		if explicit["scrub-interval"] {
			return o, errors.New("gomd: -scrub-interval only applies to -db (nothing to scrub without a page file)")
		}
	}
	if o.chaosDisk > 0 && o.db != "" {
		return o, errors.New("gomd: -chaos-disk applies to -demo and -load only (a durable base's recovery path must stay honest)")
	}
	switch o.logLevel {
	case "debug", "info", "warn", "error":
	default:
		return o, fmt.Errorf("gomd: -log-level %q is not one of debug, info, warn, error", o.logLevel)
	}
	switch o.logFormat {
	case "text", "json":
	default:
		return o, fmt.Errorf("gomd: -log-format %q is not one of text, json", o.logFormat)
	}
	return o, nil
}

// buildLogger constructs the process logger from -log-level and
// -log-format. Everything gomd and the embedded server print goes
// through it, so `gomd -log-format json | jq` works end to end.
func buildLogger(o options, out io.Writer) *slog.Logger {
	var level slog.Level
	switch o.logLevel {
	case "debug":
		level = slog.LevelDebug
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		level = slog.LevelInfo
	}
	hopts := &slog.HandlerOptions{Level: level}
	if o.logFormat == "json" {
		return slog.New(slog.NewJSONHandler(out, hopts))
	}
	return slog.New(slog.NewTextHandler(out, hopts))
}

func main() {
	opts, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(opts, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// chaosPoolFrames bounds the buffer pool in -chaos-disk mode. An
// unbounded pool would absorb the whole index into cache and the
// injector would never see a read; a small pool keeps queries hitting
// the (faulty) device.
const chaosPoolFrames = 32

// chaosPool builds a fault-injected device + bounded pool for
// -chaos-disk. Faults stay disabled (p=0) while the database and its
// indexes are built — construction is clean; armChaos starts the
// faults once the database is open.
func chaosPool(seed int64) (*storage.FaultInjector, *storage.BufferPool) {
	inj := storage.NewFaultInjector(storage.NewDisk(0), seed)
	return inj, storage.NewBufferPool(inj, chaosPoolFrames, storage.LRU)
}

// armChaos flushes and empties the pool cache — after a clean build the
// whole index is resident, and a warm cache never reads — then starts
// injecting read faults.
func armChaos(inj *storage.FaultInjector, pool *storage.BufferPool, p float64) error {
	if err := pool.FlushAll(); err != nil {
		return err
	}
	if err := pool.DropClean(); err != nil {
		return err
	}
	inj.FailProbabilistically(p, 0)
	return nil
}

// openDatabase builds the Database for the selected mode and returns a
// line describing it for the startup log, plus the armed-later fault
// injector when -chaos-disk is on.
func openDatabase(opts options) (*server.Database, string, *storage.FaultInjector, error) {
	var inj *storage.FaultInjector
	var pool *storage.BufferPool
	if opts.chaosDisk > 0 {
		inj, pool = chaosPool(opts.chaosSeed)
	}
	switch {
	case opts.demo:
		d, err := server.DemoDatabaseWith(opts.scale, opts.seed, pool)
		if err != nil {
			return nil, "", nil, err
		}
		if inj != nil {
			if err := armChaos(inj, pool, opts.chaosDisk); err != nil {
				return nil, "", nil, err
			}
		}
		return d, fmt.Sprintf("demo database (scale %d, seed %d): %d objects, collection var All, indexed path T0.Next.Next.Next.Payload",
			opts.scale, opts.seed, d.Base.Count()), inj, nil
	case opts.load != "":
		d, err := server.LoadDumpFileWith(opts.load, opts.indexes, pool)
		if err != nil {
			return nil, "", nil, err
		}
		if inj != nil {
			if err := armChaos(inj, pool, opts.chaosDisk); err != nil {
				return nil, "", nil, err
			}
		}
		return d, fmt.Sprintf("loaded %s: %d objects, %d indexes", opts.load, d.Base.Count(), len(d.Manager.Indexes())), inj, nil
	default:
		d, info, err := server.OpenDurableBaseArchived(opts.db, opts.archiveDir)
		if err != nil {
			return nil, "", nil, err
		}
		desc := fmt.Sprintf("opened %s: %d objects, %d indexes (recovery: %d txns committed, %d discarded, %d pages redone)",
			opts.db, d.Base.Count(), len(d.Manager.Indexes()), info.CommittedTxns, info.DiscardedTxns, info.RedonePages)
		if info.WALTailDamaged {
			desc += "; WAL tail was torn, incomplete transactions discarded"
		}
		if n := len(info.QuarantinedPages); n > 0 {
			desc += fmt.Sprintf("; WARNING: %d pages quarantined, run Repair", n)
		}
		if opts.archiveDir != "" {
			desc += fmt.Sprintf("; archiving WAL segments to %s", opts.archiveDir)
		}
		return d, desc, nil, nil
	}
}

// run opens the database, serves it until SIGTERM/SIGINT, then drains.
// onReady, if non-nil, is called with the started server (tests use it
// to learn the ephemeral addresses).
func run(opts options, out io.Writer, onReady func(*server.Server)) error {
	logger := buildLogger(opts, out)

	d, desc, inj, err := openDatabase(opts)
	if err != nil {
		return err
	}
	logger.Info("gomd: " + desc)
	if inj != nil {
		// The database and its indexes were built on a clean device; the
		// injector was armed only after (armChaos), so every fault surfaces
		// at query time as a typed INTERNAL response — never a corrupt build.
		logger.Warn("gomd: CHAOS: injecting page-read faults — responses may be INTERNAL",
			"p", opts.chaosDisk, "seed", opts.chaosSeed)
	}

	// Durable bases get the full robustness plane: a background integrity
	// scrubber whose unhealed findings degrade /healthz, and online
	// backup over the admin endpoint (docs/ROBUSTNESS.md).
	var scrubber *storage.Scrubber
	cfg := server.Config{
		Addr:               opts.addr,
		AdminAddr:          opts.admin,
		MaxInflight:        opts.maxInflight,
		QueryWorkers:       opts.workers,
		RequestTimeout:     opts.requestTimeout,
		IdleTimeout:        opts.idleTimeout,
		Name:               opts.name,
		Logger:             logger,
		SlowQueryThreshold: opts.slowQuery,
		OnDrain: func() error {
			logger.Info("gomd: checkpointing on drain")
			return d.Checkpoint()
		},
	}
	if d.Durable() {
		cfg.OnBackup = func(dest string) (any, error) { return d.Backup(dest) }
		if opts.scrubInterval > 0 {
			scrubber = storage.NewScrubber(d.Disk(), d.WAL(), storage.ScrubConfig{
				Interval:       opts.scrubInterval,
				PagesPerSecond: 256,
				OnCorrupt: func(id storage.PageID, healed bool) {
					if healed {
						logger.Warn("gomd: scrub healed a corrupt page from the log", "page", id)
					} else {
						logger.Error("gomd: scrub found an unhealable corrupt page — Repair or restore from backup", "page", id)
					}
				},
			})
			cfg.HealthCheck = func() error {
				if n := len(scrubber.Unhealed()); n > 0 {
					return fmt.Errorf("scrub: %d unhealed corrupt pages", n)
				}
				return nil
			}
			scrubber.Start()
			logger.Info("gomd: integrity scrubber running", "interval", opts.scrubInterval)
		}
	}

	s := server.New(d.Engine, d.Manager, cfg)
	if err := s.Start(); err != nil {
		if scrubber != nil {
			scrubber.Stop()
		}
		d.Close()
		return err
	}
	if onReady != nil {
		onReady(s)
	}

	// Periodic checkpoints bound recovery replay time (durable bases;
	// a no-op for -demo and -load). See the runbook in docs/SERVICE.md.
	stopCheckpoints := make(chan struct{})
	checkpointsDone := make(chan struct{})
	go func() {
		defer close(checkpointsDone)
		if opts.checkpoint <= 0 {
			return
		}
		t := time.NewTicker(opts.checkpoint)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := d.Checkpoint(); err != nil {
					logger.Error("gomd: periodic checkpoint failed", "err", err)
				}
			case <-stopCheckpoints:
				return
			}
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	sig := <-sigc
	logger.Info(fmt.Sprintf("gomd: received %s, draining", sig))

	ctx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	drainErr := s.Shutdown(ctx)
	close(stopCheckpoints)
	<-checkpointsDone
	if scrubber != nil {
		scrubber.Stop()
	}
	closeErr := d.Close()
	if drainErr == nil && closeErr == nil {
		logger.Info("gomd: clean shutdown")
	}
	return errors.Join(drainErr, closeErr)
}
