package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Trajectory gate: compares a fresh snapshot against the last N
// snapshots kept in a history directory and fails (nonzero exit) when a
// pinned section regresses by more than the threshold against the best
// historical value. On pass, the fresh snapshot is appended to the
// history (snap-NNNN.json) and old entries beyond the keep limit are
// pruned, so the baseline is a rolling window of the repo's own best
// recent results rather than a single hand-updated file.
//
// Only machine-stable quantities are gated — speedup ratios for timed
// sections and structural values (keys/leaf, height, compression ratio)
// for shape sections. Raw wall times are recorded in snapshots for
// humans but never gated: CI runners vary too much for an absolute-time
// gate to be anything but flaky.

// gateConfig carries the -gate* flag values.
type gateConfig struct {
	dir       string  // history directory
	threshold float64 // max allowed regression, percent
	pinned    string  // comma-separated sections to enforce
	keep      int     // history snapshots to retain
}

// gateVerdict is the outcome for one gated metric.
type gateVerdict struct {
	key      string
	baseline float64
	current  float64
	better   string
	deltaPct float64 // signed; positive = regression
	pinned   bool
	failed   bool
}

// historySnapshots lists the history files in order (snap-0001.json,
// snap-0002.json, ...). Non-matching files are ignored so the directory
// can hold a README or CI bookkeeping.
func historySnapshots(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return paths, nil
}

// gateBaseline folds the history down to the best seen value per metric
// key. "Best" follows each metric's direction: max for better=more,
// min for better=less. Schema-1 history files contribute through the
// Speedup fallback in gateQuantity, so an old history keeps gating the
// sections it covered.
func gateBaseline(paths []string) (map[string]gateVerdict, error) {
	base := map[string]gateVerdict{}
	for _, p := range paths {
		snap, err := loadSnapshot(p)
		if err != nil {
			return nil, err
		}
		for _, m := range snap.Metrics {
			val, better, ok := m.gateQuantity()
			if !ok {
				continue
			}
			k := m.key()
			cur, seen := base[k]
			if !seen ||
				(better == "more" && val > cur.baseline) ||
				(better == "less" && val < cur.baseline) {
				base[k] = gateVerdict{key: k, baseline: val, better: better}
			}
		}
	}
	return base, nil
}

// runGate evaluates cur against the history in cfg.dir. It prints a
// verdict table and returns the list of failed metrics (empty = pass).
// On pass it records cur into the history and prunes old entries; on
// fail the history is left untouched so the regression cannot poison
// the baseline.
func runGate(cfg gateConfig, cur *Snapshot) ([]gateVerdict, error) {
	paths, err := historySnapshots(cfg.dir)
	if err != nil {
		return nil, err
	}
	base, err := gateBaseline(paths)
	if err != nil {
		return nil, err
	}

	pinned := map[string]bool{}
	for _, s := range strings.Split(cfg.pinned, ",") {
		if s = strings.TrimSpace(s); s != "" {
			pinned[s] = true
		}
	}

	var verdicts []gateVerdict
	for _, m := range cur.Metrics {
		val, better, ok := m.gateQuantity()
		if !ok {
			continue
		}
		v := gateVerdict{key: m.key(), current: val, better: better, pinned: pinned[m.Section]}
		if b, seen := base[m.key()]; seen {
			v.baseline = b.baseline
			// Normalise delta so positive always means "got worse".
			if better == "more" {
				v.deltaPct = 100 * (b.baseline - val) / b.baseline
			} else {
				v.deltaPct = 100 * (val - b.baseline) / b.baseline
			}
			v.failed = v.pinned && v.deltaPct > cfg.threshold
		}
		verdicts = append(verdicts, v)
	}

	fmt.Printf("\ntrajectory gate: %d history snapshot(s) in %s, threshold %.0f%%, pinned sections [%s]\n",
		len(paths), cfg.dir, cfg.threshold, cfg.pinned)
	fmt.Printf("%-40s %10s %10s %9s  %s\n", "metric", "baseline", "current", "delta", "verdict")
	var failures []gateVerdict
	for _, v := range verdicts {
		verdict := "ok"
		switch {
		case v.baseline == 0:
			verdict = "new (no baseline)"
		case !v.pinned:
			verdict = "unpinned"
		case v.failed:
			verdict = fmt.Sprintf("FAIL (> %.0f%%)", cfg.threshold)
			failures = append(failures, v)
		}
		baseStr := "-"
		if v.baseline != 0 {
			baseStr = fmt.Sprintf("%.2f", v.baseline)
		}
		fmt.Printf("%-40s %10s %10.2f %+8.1f%%  %s\n", v.key, baseStr, v.current, v.deltaPct, verdict)
	}

	if len(failures) > 0 {
		fmt.Printf("gate: FAIL — %d pinned metric(s) regressed; history not updated\n", len(failures))
		return failures, nil
	}
	if err := recordHistory(cfg, cur, paths); err != nil {
		return nil, err
	}
	fmt.Println("gate: PASS")
	return nil, nil
}

// recordHistory writes cur as the next snap-NNNN.json and prunes the
// oldest entries beyond cfg.keep.
func recordHistory(cfg gateConfig, cur *Snapshot, paths []string) error {
	if err := os.MkdirAll(cfg.dir, 0o755); err != nil {
		return err
	}
	next := 1
	if len(paths) > 0 {
		last := filepath.Base(paths[len(paths)-1])
		fmt.Sscanf(last, "snap-%d.json", &next)
		next++
	}
	out := filepath.Join(cfg.dir, fmt.Sprintf("snap-%04d.json", next))
	if err := writeSnapshot(cur, out); err != nil {
		return err
	}
	paths = append(paths, out)
	for len(paths) > cfg.keep {
		if err := os.Remove(paths[0]); err != nil {
			return err
		}
		paths = paths[1:]
	}
	fmt.Printf("gate: recorded %s (history now %d/%d)\n", out, len(paths), cfg.keep)
	return nil
}
