package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"asr/internal/bench"
)

// Snapshot is the machine-readable form of the perf + startup
// experiments: one metric per row. Written by `asrbench -snapshot
// BENCH_9.json`, diffed by -compare, and gated against history by
// -gate (see gate.go / `make bench-compare`).
//
// Schema history:
//
//	1 — perf experiment only: Section/Variant/WallNS/Speedup
//	2 — adds the startup experiment and the Value/Unit/Better fields
//	    for structural (non-wall) metrics; Better records which
//	    direction is an improvement ("more" or "less")
//
// Schema-1 files (BENCH_4.json) still load: the new fields are zero,
// and the gate falls back to the Speedup column for them.
type Snapshot struct {
	Schema     int              `json:"schema"`
	Experiment string           `json:"experiment"`
	Metrics    []SnapshotMetric `json:"metrics"`
}

// snapshotSchema is the schema version this binary writes.
const snapshotSchema = 2

// SnapshotMetric is one measured variant. WallNS and Speedup come from
// timed sections; Value/Unit carry structural measurements (keys per
// leaf, tree height, compression ratio) that do not depend on the
// machine the snapshot was taken on.
type SnapshotMetric struct {
	Section string  `json:"section"`
	Variant string  `json:"variant"`
	WallNS  int64   `json:"wall_ns,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`
	Value   float64 `json:"value,omitempty"`
	Unit    string  `json:"unit,omitempty"`
	Better  string  `json:"better,omitempty"`
}

// key identifies a metric across snapshots. Variants may embed run
// details in parentheses (row counts, rep counts); those are stripped
// so the key stays stable when only the annotation changes.
func (m SnapshotMetric) key() string {
	v := m.Variant
	if i := strings.IndexByte(v, '('); i > 0 {
		v = strings.TrimSpace(v[:i])
	}
	return m.Section + "/" + v
}

// gateQuantity returns the value the trajectory gate compares for this
// metric, with its improvement direction. Structural metrics gate on
// Value; timed sections gate on the machine-independent Speedup column;
// raw wall times are never gated (noisy on shared runners).
func (m SnapshotMetric) gateQuantity() (val float64, better string, ok bool) {
	if m.Value != 0 {
		b := m.Better
		if b == "" {
			b = "more"
		}
		return m.Value, b, true
	}
	if m.Speedup > 0 {
		return m.Speedup, "more", true
	}
	return 0, "", false
}

// takeSnapshot runs the perf and startup experiments and merges their
// measurements into one snapshot.
func takeSnapshot() (*Snapshot, error) {
	e, ok := bench.Lookup("perf")
	if !ok {
		return nil, fmt.Errorf("perf experiment not registered")
	}
	tab, err := e.Run()
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Schema: snapshotSchema, Experiment: "perf+startup"}
	for _, row := range tab.Rows {
		if len(row) < 4 {
			return nil, fmt.Errorf("perf row %v: want 4 cells", row)
		}
		wall, err := time.ParseDuration(row[2])
		if err != nil {
			return nil, fmt.Errorf("perf row %v: wall time: %w", row, err)
		}
		sp, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil {
			return nil, fmt.Errorf("perf row %v: speedup: %w", row, err)
		}
		snap.Metrics = append(snap.Metrics, SnapshotMetric{
			Section: row[0],
			Variant: row[1],
			WallNS:  wall.Nanoseconds(),
			Speedup: sp,
			Better:  "more",
		})
	}
	startup, err := bench.StartupMetrics()
	if err != nil {
		return nil, fmt.Errorf("startup metrics: %w", err)
	}
	for _, m := range startup {
		snap.Metrics = append(snap.Metrics, SnapshotMetric{
			Section: m.Section,
			Variant: m.Variant,
			WallNS:  m.WallNS,
			Value:   m.Value,
			Unit:    m.Unit,
			Better:  m.Better,
		})
	}
	return snap, nil
}

// writeSnapshot marshals the snapshot to path.
func writeSnapshot(snap *Snapshot, path string) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadSnapshot reads a snapshot file (any schema).
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// compareSnapshots prints a per-metric diff of cur against the snapshot
// at oldPath. Wall times on shared machines are noisy; the comparison
// is informational and never fails the run — regression enforcement is
// the -gate flag's job, over the stable (speedup/structural) columns.
func compareSnapshots(oldPath string, cur *Snapshot) error {
	old, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	prev := map[string]SnapshotMetric{}
	for _, m := range old.Metrics {
		prev[m.key()] = m
	}
	fmt.Printf("%-50s %12s %12s %8s\n", "metric (vs "+oldPath+")", "old", "new", "delta")
	for _, m := range cur.Metrics {
		p, ok := prev[m.key()]
		if !ok {
			fmt.Printf("%-50s %12s %12s %8s\n", m.key(), "-", fmtMetric(m), "new")
			continue
		}
		delta := "n/a"
		if p.WallNS > 0 && m.WallNS > 0 {
			delta = fmt.Sprintf("%+.0f%%", 100*float64(m.WallNS-p.WallNS)/float64(p.WallNS))
		} else if p.Value != 0 && m.Value != 0 {
			delta = fmt.Sprintf("%+.0f%%", 100*(m.Value-p.Value)/p.Value)
		}
		fmt.Printf("%-50s %12s %12s %8s\n", m.key(), fmtMetric(p), fmtMetric(m), delta)
		delete(prev, m.key())
	}
	for k, p := range prev {
		fmt.Printf("%-50s %12s %12s %8s\n", k, fmtMetric(p), "-", "gone")
	}
	return nil
}

// fmtMetric renders a metric's headline figure: wall time for timed
// rows, value+unit for structural rows.
func fmtMetric(m SnapshotMetric) string {
	if m.WallNS > 0 {
		return fmtNS(m.WallNS)
	}
	if m.Unit != "" {
		return fmt.Sprintf("%.1f %s", m.Value, m.Unit)
	}
	return fmt.Sprintf("%.2f", m.Value)
}

func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
