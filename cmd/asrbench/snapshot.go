package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"asr/internal/bench"
)

// Snapshot is the machine-readable form of the perf experiment: one
// metric per table row, wall times in nanoseconds. Written by
// `asrbench -snapshot BENCH_4.json`, diffed by -compare / `make
// bench-compare`.
type Snapshot struct {
	Schema     int              `json:"schema"`
	Experiment string           `json:"experiment"`
	Metrics    []SnapshotMetric `json:"metrics"`
}

// SnapshotMetric is one measured variant.
type SnapshotMetric struct {
	Section string  `json:"section"`
	Variant string  `json:"variant"`
	WallNS  int64   `json:"wall_ns"`
	Speedup float64 `json:"speedup"`
}

// key identifies a metric across snapshots.
func (m SnapshotMetric) key() string { return m.Section + "/" + m.Variant }

// takeSnapshot runs the perf experiment and converts its table into a
// snapshot.
func takeSnapshot() (*Snapshot, error) {
	e, ok := bench.Lookup("perf")
	if !ok {
		return nil, fmt.Errorf("perf experiment not registered")
	}
	tab, err := e.Run()
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Schema: 1, Experiment: e.ID}
	for _, row := range tab.Rows {
		if len(row) < 4 {
			return nil, fmt.Errorf("perf row %v: want 4 cells", row)
		}
		wall, err := time.ParseDuration(row[2])
		if err != nil {
			return nil, fmt.Errorf("perf row %v: wall time: %w", row, err)
		}
		sp, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil {
			return nil, fmt.Errorf("perf row %v: speedup: %w", row, err)
		}
		snap.Metrics = append(snap.Metrics, SnapshotMetric{
			Section: row[0],
			Variant: row[1],
			WallNS:  wall.Nanoseconds(),
			Speedup: sp,
		})
	}
	return snap, nil
}

// writeSnapshot marshals the snapshot to path.
func writeSnapshot(snap *Snapshot, path string) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadSnapshot reads a snapshot file.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// compareSnapshots prints a per-metric diff of cur against the snapshot
// at oldPath. Wall times on shared machines are noisy; the comparison
// is informational and never fails the run — it exists so regressions
// are visible in CI logs, not to gate on them.
func compareSnapshots(oldPath string, cur *Snapshot) error {
	old, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	prev := map[string]SnapshotMetric{}
	for _, m := range old.Metrics {
		prev[m.key()] = m
	}
	fmt.Printf("%-50s %12s %12s %8s\n", "metric (vs "+oldPath+")", "old", "new", "delta")
	for _, m := range cur.Metrics {
		p, ok := prev[m.key()]
		if !ok {
			fmt.Printf("%-50s %12s %12s %8s\n", m.key(), "-", fmtNS(m.WallNS), "new")
			continue
		}
		delta := "n/a"
		if p.WallNS > 0 {
			delta = fmt.Sprintf("%+.0f%%", 100*float64(m.WallNS-p.WallNS)/float64(p.WallNS))
		}
		fmt.Printf("%-50s %12s %12s %8s\n", m.key(), fmtNS(p.WallNS), fmtNS(m.WallNS), delta)
		delete(prev, m.key())
	}
	for k, p := range prev {
		fmt.Printf("%-50s %12s %12s %8s\n", k, fmtNS(p.WallNS), "-", "gone")
	}
	return nil
}

func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
