package main

import (
	"os"
	"path/filepath"
	"testing"
)

// mkSnap builds a schema-2 snapshot with one pinned timed metric
// (probe/batch, gated via Speedup), one pinned structural metric
// (shape/keys-per-leaf, gated via Value with better=more), and one
// unpinned wall-only metric (startup).
func mkSnap(probeSpeedup, keysPerLeaf float64) *Snapshot {
	return &Snapshot{
		Schema:     snapshotSchema,
		Experiment: "perf+startup",
		Metrics: []SnapshotMetric{
			{Section: "probe", Variant: "sorted batch (32k probes)", WallNS: 1e6, Speedup: probeSpeedup, Better: "more"},
			{Section: "shape", Variant: "fwd keys/leaf", Value: keysPerLeaf, Unit: "keys", Better: "more"},
			{Section: "startup", Variant: "recover+openfrom (4403 rows)", WallNS: 5e6, Better: "less"},
		},
	}
}

func seedHistory(t *testing.T, dir string, snaps ...*Snapshot) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range snaps {
		p := filepath.Join(dir, "snap-000"+string(rune('1'+i))+".json")
		if err := writeSnapshot(s, p); err != nil {
			t.Fatal(err)
		}
	}
}

func defaultCfg(dir string) gateConfig {
	return gateConfig{dir: dir, threshold: 25, pinned: "probe,build,shape", keep: 5}
}

func TestGateFailsOnPinnedRegression(t *testing.T) {
	dir := t.TempDir()
	seedHistory(t, dir, mkSnap(4.0, 60))

	// Probe speedup collapses 4.0 -> 2.0 (-50%): must fail, and the
	// regressed snapshot must not enter the history.
	failures, err := runGate(defaultCfg(dir), mkSnap(2.0, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0].key != "probe/sorted batch" {
		t.Fatalf("failures = %+v, want exactly probe/sorted batch", failures)
	}
	paths, _ := historySnapshots(dir)
	if len(paths) != 1 {
		t.Fatalf("history grew to %d entries on a failed gate", len(paths))
	}

	// Structural regression gates too: keys/leaf 60 -> 30.
	failures, err = runGate(defaultCfg(dir), mkSnap(4.0, 30))
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0].key != "shape/fwd keys/leaf" {
		t.Fatalf("failures = %+v, want exactly shape/fwd keys/leaf", failures)
	}
}

func TestGateWithinThresholdPassesAndRecords(t *testing.T) {
	dir := t.TempDir()
	seedHistory(t, dir, mkSnap(4.0, 60))

	// 10% down on a 25% threshold: pass, record snap-0002.json.
	failures, err := runGate(defaultCfg(dir), mkSnap(3.6, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("failures = %+v, want none", failures)
	}
	paths, _ := historySnapshots(dir)
	if len(paths) != 2 || filepath.Base(paths[1]) != "snap-0002.json" {
		t.Fatalf("history = %v, want [snap-0001 snap-0002]", paths)
	}

	// Baseline stays the best of history (4.0, not the newer 3.6), so a
	// slow drift cannot ratchet the bar down: 2.9 is within 25% of 3.6
	// but not of 4.0.
	failures, err = runGate(defaultCfg(dir), mkSnap(2.9, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 {
		t.Fatalf("failures = %+v, want drift caught against best-of-history", failures)
	}
}

func TestGateEmptyHistoryPassesAndSeeds(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh") // does not exist yet
	failures, err := runGate(defaultCfg(dir), mkSnap(4.0, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("failures on empty history: %+v", failures)
	}
	paths, _ := historySnapshots(dir)
	if len(paths) != 1 || filepath.Base(paths[0]) != "snap-0001.json" {
		t.Fatalf("history = %v, want seeded snap-0001.json", paths)
	}
}

func TestGatePrunesHistoryToKeep(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultCfg(dir)
	cfg.keep = 3
	for i := 0; i < 5; i++ {
		if failures, err := runGate(cfg, mkSnap(4.0, 60)); err != nil || len(failures) != 0 {
			t.Fatalf("run %d: failures=%v err=%v", i, failures, err)
		}
	}
	paths, _ := historySnapshots(dir)
	if len(paths) != 3 {
		t.Fatalf("history = %d entries, want pruned to 3", len(paths))
	}
	// Numbering keeps advancing past pruned entries.
	if filepath.Base(paths[2]) != "snap-0005.json" {
		t.Fatalf("latest = %s, want snap-0005.json", paths[2])
	}
}

func TestGateToleratesSchema1History(t *testing.T) {
	dir := t.TempDir()
	// A schema-1 snapshot has only Section/Variant/WallNS/Speedup — the
	// shape of the checked-in BENCH_4.json. Its speedup rows must still
	// act as baselines; its wall-only rows must not.
	old := &Snapshot{Schema: 1, Experiment: "perf", Metrics: []SnapshotMetric{
		{Section: "probe", Variant: "sorted batch (32k probes)", WallNS: 1e6, Speedup: 4.0},
		{Section: "build", Variant: "incremental inserts", WallNS: 9e6, Speedup: 1.0},
	}}
	seedHistory(t, dir, old)

	failures, err := runGate(defaultCfg(dir), mkSnap(2.0, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0].key != "probe/sorted batch" {
		t.Fatalf("failures = %+v, want probe regression vs schema-1 baseline", failures)
	}
}

func TestGateUnpinnedSectionNeverFails(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultCfg(dir)
	cfg.pinned = "shape" // probe explicitly unpinned
	seedHistory(t, dir, mkSnap(4.0, 60))
	failures, err := runGate(cfg, mkSnap(0.5, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("unpinned section failed the gate: %+v", failures)
	}
}
