package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"asr/internal/bench"
)

func TestEveryRegisteredExperimentRunsViaCLIHelper(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short mode")
	}
	for _, e := range bench.All() {
		if err := runOne(e, false, false); err != nil {
			t.Errorf("%s: %v", e.ID, err)
		}
	}
	// CSV path too, on a cheap experiment.
	e, ok := bench.Lookup("fig4")
	if !ok {
		t.Fatal("fig4 missing")
	}
	if err := runOne(e, true, false); err != nil {
		t.Error(err)
	}
}

func TestShorten(t *testing.T) {
	if got := shorten("Figure 6, §5.9.1"); len([]rune(got)) != 12 {
		t.Errorf("shorten = %q (%d runes)", got, len([]rune(got)))
	}
	if got := shorten("short"); got != "short" {
		t.Errorf("shorten = %q", got)
	}
	// Multi-byte boundary must not split a rune.
	if got := shorten("§§§§§§§§§§§§§§"); len([]rune(got)) != 12 {
		t.Errorf("shorten = %q", got)
	}
}

func TestRunOneEmitsMetrics(t *testing.T) {
	e, ok := bench.Lookup("explain-calib")
	if !ok {
		t.Fatal("explain-calib missing")
	}
	out := captureStdout(t, func() {
		if err := runOne(e, false, true); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{
		"EXPLAIN ANALYZE calibration",
		"-- metrics after explain-calib --",
		"# TYPE query_runs_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns what it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
