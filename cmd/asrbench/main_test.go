package main

import (
	"testing"

	"asr/internal/bench"
)

func TestEveryRegisteredExperimentRunsViaCLIHelper(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short mode")
	}
	for _, e := range bench.All() {
		if err := runOne(e, false); err != nil {
			t.Errorf("%s: %v", e.ID, err)
		}
	}
	// CSV path too, on a cheap experiment.
	e, ok := bench.Lookup("fig4")
	if !ok {
		t.Fatal("fig4 missing")
	}
	if err := runOne(e, true); err != nil {
		t.Error(err)
	}
}

func TestShorten(t *testing.T) {
	if got := shorten("Figure 6, §5.9.1"); len([]rune(got)) != 12 {
		t.Errorf("shorten = %q (%d runes)", got, len([]rune(got)))
	}
	if got := shorten("short"); got != "short" {
		t.Errorf("shorten = %q", got)
	}
	// Multi-byte boundary must not split a rune.
	if got := shorten("§§§§§§§§§§§§§§"); len([]rune(got)) != 12 {
		t.Errorf("shorten = %q", got)
	}
}
