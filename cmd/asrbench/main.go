// Command asrbench runs the paper-reproduction experiments: every table
// and figure of Kemper & Moerkotte's "Access Support in Object Bases"
// plus the page-level validation experiments.
//
// Usage:
//
//	asrbench -list                 # enumerate experiments
//	asrbench -experiment fig6      # run one experiment
//	asrbench -all                  # run everything
//	asrbench -experiment fig6 -csv # machine-readable output
//	asrbench -snapshot BENCH_9.json                         # perf+startup snapshot
//	asrbench -snapshot BENCH_9.json -compare BENCH_4.json   # informational diff
//	asrbench -snapshot BENCH_9.json -gate bench-history     # trajectory gate (CI)
package main

import (
	"flag"
	"fmt"
	"os"

	"asr/internal/bench"
	"asr/internal/telemetry"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		id      = flag.String("experiment", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		csv     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		metrics = flag.Bool("metrics", false, "emit a telemetry snapshot (Prometheus text) after each experiment")
		snap    = flag.String("snapshot", "", "run the perf+startup experiments and write a machine-readable snapshot to this file")
		compare = flag.String("compare", "", "with -snapshot: diff the fresh snapshot against this previous snapshot file")
		gateDir = flag.String("gate", "", "with -snapshot: trajectory-gate the snapshot against the history in this directory (fails on regression)")
		gateThr = flag.Float64("gate-threshold", 25, "max allowed regression (percent) for pinned sections before the gate fails")
		gatePin = flag.String("gate-pin", "probe,build,shape", "comma-separated snapshot sections the gate enforces; others are recorded but informational")
		gateN   = flag.Int("gate-keep", 5, "number of history snapshots to retain in the gate directory")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `asrbench — run the paper-reproduction experiments.

usage:
  asrbench -list                       enumerate experiments (fig/tab ids)
  asrbench -experiment ID [-csv] [-metrics]
  asrbench -all
  asrbench -snapshot OUT.json [-compare PREV.json]   perf+startup snapshot + diff
  asrbench -snapshot OUT.json -gate DIR              snapshot, then gate against
                                                     the last -gate-keep history
                                                     snapshots; exits 1 if a
                                                     pinned section regresses
                                                     more than -gate-threshold %

flags:
`)
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), `
docs: EXPERIMENTS.md (measured output per paper claim), docs/PERFORMANCE.md
      (perf experiment + snapshots), docs/OBSERVABILITY.md (-metrics,
      explain-calib calibration).
`)
	}
	flag.Parse()

	switch {
	case *snap != "":
		cur, err := takeSnapshot()
		if err != nil {
			fail(err)
		}
		if err := writeSnapshot(cur, *snap); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d metrics)\n", *snap, len(cur.Metrics))
		if *compare != "" {
			if err := compareSnapshots(*compare, cur); err != nil {
				fail(err)
			}
		}
		if *gateDir != "" {
			cfg := gateConfig{dir: *gateDir, threshold: *gateThr, pinned: *gatePin, keep: *gateN}
			failures, err := runGate(cfg, cur)
			if err != nil {
				fail(err)
			}
			if len(failures) > 0 {
				os.Exit(1)
			}
		}
	case *list:
		fmt.Printf("%-14s %-12s %s\n", "id", "paper ref", "title")
		for _, e := range bench.All() {
			fmt.Printf("%-14s %-12s %s\n", e.ID, shorten(e.Ref), e.Title)
		}
	case *all:
		for _, e := range bench.All() {
			if err := runOne(e, *csv, *metrics); err != nil {
				fail(err)
			}
		}
	case *id != "":
		e, ok := bench.Lookup(*id)
		if !ok {
			fail(fmt.Errorf("unknown experiment %q; use -list", *id))
		}
		if err := runOne(e, *csv, *metrics); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e bench.Experiment, csv, metrics bool) error {
	if metrics {
		// Per-experiment snapshot: zero the registry so the dump below
		// shows only this experiment's instrumentation counts.
		telemetry.Default().Reset()
	}
	tab, err := e.Run()
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	if csv {
		fmt.Print(tab.CSV())
	} else {
		fmt.Println(tab.String())
	}
	if metrics {
		fmt.Printf("-- metrics after %s --\n", e.ID)
		if _, err := telemetry.Default().WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func shorten(ref string) string {
	r := []rune(ref)
	if len(r) > 12 {
		return string(r[:12])
	}
	return ref
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "asrbench:", err)
	os.Exit(1)
}
