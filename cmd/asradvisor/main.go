// Command asradvisor performs the physical database design procedure the
// paper's conclusion proposes: given an application profile and an
// operation mix, it evaluates every access-support-relation extension ×
// decomposition with the analytical cost model and ranks the designs.
//
// The profile and mix are supplied as a JSON document:
//
//	{
//	  "n": 4,
//	  "c":    [1000, 5000, 10000, 50000, 100000],
//	  "d":    [900, 4000, 8000, 20000],
//	  "fan":  [2, 2, 3, 4],
//	  "size": [500, 400, 300, 300, 100],
//	  "queries": [
//	    {"w": 0.5,  "kind": "bw", "i": 0, "j": 4},
//	    {"w": 0.25, "kind": "bw", "i": 0, "j": 3},
//	    {"w": 0.25, "kind": "fw", "i": 1, "j": 2}
//	  ],
//	  "updates": [{"w": 0.5, "i": 2}, {"w": 0.5, "i": 3}],
//	  "pup": 0.2
//	}
//
// Usage:
//
//	asradvisor -config profile.json [-top 10]
//	asradvisor -example            # print the JSON above and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"asr/internal/bench"
	"asr/internal/costmodel"
)

type configQuery struct {
	W    float64 `json:"w"`
	Kind string  `json:"kind"`
	I    int     `json:"i"`
	J    int     `json:"j"`
}

type configUpdate struct {
	W float64 `json:"w"`
	I int     `json:"i"`
}

type config struct {
	N       int            `json:"n"`
	C       []float64      `json:"c"`
	D       []float64      `json:"d"`
	Fan     []float64      `json:"fan"`
	Size    []float64      `json:"size"`
	Shar    []float64      `json:"shar,omitempty"`
	Queries []configQuery  `json:"queries"`
	Updates []configUpdate `json:"updates"`
	PUp     float64        `json:"pup"`
}

const exampleConfig = `{
  "n": 4,
  "c":    [1000, 5000, 10000, 50000, 100000],
  "d":    [900, 4000, 8000, 20000],
  "fan":  [2, 2, 3, 4],
  "size": [500, 400, 300, 300, 100],
  "queries": [
    {"w": 0.5,  "kind": "bw", "i": 0, "j": 4},
    {"w": 0.25, "kind": "bw", "i": 0, "j": 3},
    {"w": 0.25, "kind": "fw", "i": 1, "j": 2}
  ],
  "updates": [{"w": 0.5, "i": 2}, {"w": 0.5, "i": 3}],
  "pup": 0.2
}`

func main() {
	var (
		path     = flag.String("config", "", "JSON profile+mix file ('-' for stdin)")
		top      = flag.Int("top", 10, "number of designs to print")
		example  = flag.Bool("example", false, "print an example configuration and exit")
		validate = flag.Bool("validate", false, "empirically check the recommendation on a scaled synthetic database")
		seed     = flag.Int64("seed", 1, "generator seed for -validate")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `asradvisor — rank ASR physical designs (extension × decomposition) for a workload.

usage:
  asradvisor -example                       print an example JSON profile+mix
  asradvisor -config profile.json [-top N]  rank designs with the cost model
  asradvisor -config profile.json -validate check the winner empirically (-seed)

flags:
`)
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), `
docs: docs/ARCHITECTURE.md (costmodel layer), docs/PERFORMANCE.md;
      DESIGN.md and EXPERIMENTS.md for model provenance. The same advice
      runs self-tuning inside a live base: internal/tuner, examples/selftuning.
`)
	}
	flag.Parse()

	if *example {
		fmt.Println(exampleConfig)
		return
	}
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	var raw []byte
	var err error
	if *path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(*path)
	}
	if err != nil {
		fail(err)
	}
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fail(fmt.Errorf("parsing %s: %w", *path, err))
	}

	model, err := costmodel.New(costmodel.DefaultSystem(), costmodel.Profile{
		N: cfg.N, C: cfg.C, D: cfg.D, Fan: cfg.Fan, Size: cfg.Size, Shar: cfg.Shar,
	})
	if err != nil {
		fail(err)
	}
	for _, w := range model.Warnings {
		fmt.Fprintln(os.Stderr, "asradvisor: warning:", w)
	}

	mix := costmodel.Mix{PUp: cfg.PUp}
	for _, q := range cfg.Queries {
		kind := costmodel.Forward
		if q.Kind == "bw" {
			kind = costmodel.Backward
		} else if q.Kind != "fw" {
			fail(fmt.Errorf("query kind %q, want fw or bw", q.Kind))
		}
		mix.Queries = append(mix.Queries, costmodel.WeightedQuery{W: q.W, Kind: kind, I: q.I, J: q.J})
	}
	for _, u := range cfg.Updates {
		mix.Updates = append(mix.Updates, costmodel.WeightedUpdate{W: u.W, I: u.I})
	}

	ranked, noSup, err := model.Advise(mix)
	if err != nil {
		fail(err)
	}
	fmt.Printf("profile: n=%d, %d designs evaluated, P_up=%.3f\n", cfg.N, len(ranked), cfg.PUp)
	fmt.Printf("no-support baseline: %.1f expected page accesses per operation\n\n", noSup)
	fmt.Print(costmodel.FormatRanking(ranked, *top))
	best := ranked[0]
	fmt.Printf("\nrecommendation: extension %q with decomposition %s (%.1fx over no support)\n",
		best.Design.Ext, best.Design.Dec, noSup/best.MixCost)

	if *validate {
		fmt.Println("\nvalidating the recommendation on a scaled synthetic database...")
		tab, err := bench.ValidateDesign(costmodel.Profile{
			N: cfg.N, C: cfg.C, D: cfg.D, Fan: cfg.Fan, Size: cfg.Size, Shar: cfg.Shar,
		}, best.Design, mix, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(tab.String())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "asradvisor:", err)
	os.Exit(1)
}
